"""The stateful serverless runtime: Skadi's execution engine.

This is the paper's §2.3 built over the simulated cluster: a centralized
scheduler plus raylets (per-node in Gen-1, per-device in Gen-2), futures
resolved by a pull- or push-based protocol, a heterogeneity-aware ownership
table, per-device plasma stores with spill to disaggregated memory, lineage
or reliable-cache fault tolerance, and task/actor APIs.

Tasks carry real Python payloads — results are genuine values — while the
simulator charges virtual time for every control message, data transfer,
and device-seconds of compute, so the same run yields both correct answers
and performance shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Generator, List, Optional, Sequence, Tuple

from ..caching.kv import estimate_nbytes
from ..caching.store import CachingLayer, CacheNode, ObjectLostError
from ..cluster.cluster import Cluster
from ..cluster.durable import DurableStore
from ..cluster.hardware import Device, DeviceKind
from ..cluster.node import NodeKind
from ..cluster.simtime import Interrupt, Signal
from .config import Generation, ResolutionMode, RuntimeConfig, SchedulingPolicy
from .ids import IdGenerator
from .lineage import LineageGraph, UnrecoverableObjectError
from .object_ref import ObjectRef, collect_refs, replace_refs
from .object_store import LocalObjectStore
from .ownership import OwnershipTable, ValueState
from .raylet import Raylet
from .scheduler import PlacementError, Scheduler
from .task import ANY_COMPUTE_KIND, ActorSpec, TaskSpec, TaskState

__all__ = ["ServerlessRuntime", "ActorHandle", "TaskError", "TaskTimeline"]

DRIVER = "driver"


class TaskError(RuntimeError):
    """A task payload raised; surfaces at ``get``."""


@dataclass
class TaskTimeline:
    """Per-task virtual-time milestones (benchmark raw material)."""

    task_id: str
    name: str
    submitted: float = 0.0
    dispatched: float = 0.0  # lease reached the raylet
    inputs_ready: float = 0.0  # all arguments local
    started: float = 0.0  # device slot acquired
    finished: float = 0.0
    device_id: str = ""

    @property
    def input_stall(self) -> float:
        """Time spent waiting for arguments — pull vs push attacks this."""
        return self.inputs_ready - self.dispatched

    @property
    def latency(self) -> float:
        return self.finished - self.submitted


class _TaskCtx:
    """Book-keeping for one in-flight task."""

    __slots__ = (
        "spec", "ref", "device", "raylet", "done", "state", "timeline",
        "error", "replays", "proc",
    )

    def __init__(self, spec: TaskSpec, ref: ObjectRef, done: Signal):
        self.spec = spec
        self.ref = ref
        self.device: Optional[Device] = None
        self.raylet: Optional[Raylet] = None
        self.done = done
        self.state = TaskState.PENDING
        self.timeline = TaskTimeline(spec.task_id, spec.name)
        self.error: Optional[str] = None
        self.replays = 0
        self.proc = None


class _ActorLock:
    """FIFO mutual exclusion for one actor's method calls."""

    def __init__(self, sim):
        self.sim = sim
        self.busy = False
        self.queue: List[Signal] = []

    def acquire(self) -> Generator:
        if not self.busy:
            self.busy = True
            return
            yield  # noqa: unreachable — marks this function as a generator
        turn = Signal(self.sim)
        self.queue.append(turn)
        yield turn  # the releasing holder passes the baton; busy stays True

    def release(self) -> None:
        if self.queue:
            nxt = self.queue.pop(0)
            self.sim.schedule(0.0, nxt.succeed)
        else:
            self.busy = False


class ActorHandle:
    """Client-side handle to a stateful actor."""

    def __init__(self, runtime: "ServerlessRuntime", actor_id: str, device_id: str):
        self._runtime = runtime
        self.actor_id = actor_id
        self.device_id = device_id

    def call(
        self,
        method: Callable[..., Any],
        *args: Any,
        compute_cost: float = 1e-4,
        output_nbytes: Optional[int] = None,
        **kwargs: Any,
    ) -> ObjectRef:
        """Invoke ``method(state, *args, **kwargs)`` serially on the actor."""
        return self._runtime._submit_actor_task(
            self, method, args, kwargs, compute_cost, output_nbytes
        )

    def __repr__(self) -> str:
        return f"ActorHandle({self.actor_id}@{self.device_id})"


class ServerlessRuntime:
    """The distributed task execution engine over a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[RuntimeConfig] = None,
        reliable_cache: Optional[CachingLayer] = None,
        durable_store: Optional["DurableStore"] = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.net = cluster.network
        self.config = config or RuntimeConfig()
        self.reliable_cache = reliable_cache
        self.durable_store = durable_store
        self._checkpoints: set = set()  # object ids checkpointed to durable
        self.ids = IdGenerator()
        self.ownership = OwnershipTable()
        self.lineage = LineageGraph()

        self._raylets: List[Raylet] = []
        self._raylet_of_device: Dict[str, Raylet] = {}
        self._raylets_by_node: Dict[str, List[Raylet]] = {}
        self._build_raylets()

        head = self._head_node()
        self.gcs_endpoint = head.attachment_endpoint
        schedulable = [
            dev
            for dev in self.cluster.all_devices()
            if dev.kind in (DeviceKind.CPU, DeviceKind.GPU, DeviceKind.FPGA)
            and dev.device_id in self._raylet_of_device
        ]
        self.scheduler = Scheduler(
            cluster,
            self.ownership,
            self.config.scheduling,
            schedulable,
            endpoint=self.gcs_endpoint,
        )
        self.scheduler.alive_filter = self._device_alive

        self._ctxs: Dict[str, _TaskCtx] = {}
        self._ctx_of_object: Dict[str, _TaskCtx] = {}
        self._waiting: List[_TaskCtx] = []  # pull mode: deps not yet ready
        self._gangs: Dict[str, List[_TaskCtx]] = {}
        self._subs: Dict[str, List[_TaskCtx]] = {}  # push subscriptions
        self._arrivals: Dict[Tuple[str, str], Signal] = {}
        self._actor_state: Dict[str, Any] = {}
        self._actor_locks: Dict[str, "Signal"] = {}
        self._actor_queues: Dict[str, List] = {}
        self._actor_device: Dict[str, str] = {}
        self._dead_actors: Dict[str, str] = {}  # actor_id -> cause
        self.timelines: List[TaskTimeline] = []
        self.tasks_finished = 0
        self.tasks_failed = 0

    # -- construction ----------------------------------------------------------

    def _head_node(self):
        servers = self.cluster.nodes_of_kind(NodeKind.SERVER)
        if servers:
            return servers[0]
        return next(iter(self.cluster.nodes.values()))

    def _build_raylets(self) -> None:
        spill_store = self._build_spill_store()
        self._spill_store = spill_store
        for node in self.cluster.nodes.values():
            raylets = self._raylets_for_node(node, spill_store)
            self._raylets.extend(raylets)
            self._raylets_by_node[node.node_id] = raylets
            for raylet in raylets:
                for dev in raylet.devices:
                    self._raylet_of_device[dev.device_id] = raylet

    def _build_spill_store(self) -> Optional[LocalObjectStore]:
        blades = self.cluster.nodes_of_kind(NodeKind.MEMORY_BLADE)
        if not blades:
            return None
        return LocalObjectStore(blades[0].attachment_device)

    def _raylets_for_node(self, node, spill_store) -> List[Raylet]:
        if node.kind == NodeKind.SERVER:
            cpu = node.first_of_kind(DeviceKind.CPU)
            return [Raylet(self.sim, cpu, list(node.devices), spill_store)]
        if node.kind == NodeKind.MEMORY_BLADE:
            return []  # blades store spilled objects; no compute raylet
        if node.kind == NodeKind.ACCELERATOR:
            return [Raylet(self.sim, node.devices[0], [node.devices[0]], spill_store)]
        # physically-disaggregated card
        dpu = node.first_of_kind(DeviceKind.DPU)
        companions = [d for d in node.devices if d.kind != DeviceKind.DPU]
        if self.config.generation == Generation.GEN1:
            return [Raylet(self.sim, dpu, companions, spill_store)]
        # Gen-2: device-specific raylet on every heterogeneous device
        return [Raylet(self.sim, dev, [dev], spill_store) for dev in companions]

    # -- helpers -----------------------------------------------------------------

    def raylet_for_device(self, device_id: str) -> Raylet:
        raylet = self._raylet_of_device.get(device_id)
        if raylet is None:
            raise KeyError(f"no raylet manages device {device_id!r}")
        return raylet

    def _device_alive(self, device_id: str) -> bool:
        raylet = self._raylet_of_device.get(device_id)
        return raylet is not None and raylet.alive

    def _find_store_with(self, object_id: str) -> Optional[LocalObjectStore]:
        entry = self.ownership.entry(object_id)
        for node_id in sorted(entry.locations):
            for raylet in self._raylets_by_node.get(node_id, []):
                if not raylet.alive:
                    continue
                store = raylet.find_object(object_id)
                if store is not None:
                    return store
        # overflow objects live on the disaggregated-memory blade
        if self._spill_store is not None and self._spill_store.contains(object_id):
            return self._spill_store
        return None

    # -- public API: objects ------------------------------------------------------

    def put(self, value: Any, nbytes: Optional[int] = None) -> ObjectRef:
        """Driver-side put: store on the head node, immediately ready."""
        oid = self.ids.object_id()
        nbytes = nbytes if nbytes is not None else estimate_nbytes(value)
        self.ownership.create(oid, owner=DRIVER, task_id="")
        head = self._head_node()
        raylet = self._raylets_by_node[head.node_id][0]
        store = raylet.store_of(raylet.host_device.device_id)
        store.put(oid, value, nbytes)
        self.ownership.mark_ready(oid, head.node_id, nbytes, raylet.host_device.device_id)
        self._on_object_ready(oid)
        return ObjectRef(oid, owner=DRIVER)

    def get(self, refs, timeout: Optional[float] = None) -> Any:
        """Block the driver until ref(s) resolve; returns real value(s)."""
        single = isinstance(refs, ObjectRef)
        ref_list: List[ObjectRef] = [refs] if single else list(refs)
        for attempt in range(self.config.max_lineage_replays + 1):
            self.sim.run(until=timeout)
            lost = []
            for ref in ref_list:
                ctx = self._ctx_of_object.get(ref.object_id)
                if ctx is not None and ctx.state == TaskState.FAILED:
                    raise TaskError(
                        f"task {ctx.spec.task_id} ({ctx.spec.name}) failed: {ctx.error}"
                    )
                if not self.ownership.contains(ref.object_id):
                    raise KeyError(f"unknown object {ref.object_id!r}")
                entry = self.ownership.entry(ref.object_id)
                if entry.state == ValueState.LOST:
                    lost.append(ref)
                elif entry.state == ValueState.PENDING:
                    if ctx is None:
                        raise KeyError(
                            f"object {ref.object_id!r} pending with no producing task"
                        )
                    failed = self._find_failed_upstream(ref.object_id, set())
                    if failed is not None:
                        raise TaskError(
                            f"task {failed.spec.task_id} ({failed.spec.name}) "
                            f"failed upstream of {ref.object_id}: {failed.error}"
                        )
            if not lost:
                break
            for ref in lost:
                self._recover(ref)
        else:
            raise UnrecoverableObjectError(
                f"objects still lost after {self.config.max_lineage_replays} replays"
            )
        values = [self._read_value(ref) for ref in ref_list]
        return values[0] if single else values

    def wait(
        self, refs: Sequence[ObjectRef], num_returns: int = 1
    ) -> Tuple[List[ObjectRef], List[ObjectRef]]:
        """Advance virtual time until ``num_returns`` of ``refs`` are ready."""
        refs = list(refs)
        if num_returns > len(refs):
            raise ValueError(f"num_returns={num_returns} > {len(refs)} refs")
        while True:
            ready = [r for r in refs if self.ownership.is_ready(r.object_id)]
            if len(ready) >= num_returns:
                not_ready = [r for r in refs if r not in ready]
                return ready[:num_returns], ready[num_returns:] + not_ready
            nxt = self.sim.peek()
            if nxt is None:
                raise RuntimeError(
                    f"wait() deadlocked: only {len(ready)}/{num_returns} refs can become ready"
                )
            self.sim.run(until=nxt)

    def _find_failed_upstream(self, object_id: str, visited: set) -> Optional[_TaskCtx]:
        """Walk a pending object's producer chain for a failed task."""
        if object_id in visited:
            return None
        visited.add(object_id)
        ctx = self._ctx_of_object.get(object_id)
        if ctx is None:
            return None
        if ctx.state == TaskState.FAILED:
            return ctx
        for dep in ctx.spec.dependencies:
            found = self._find_failed_upstream(dep.object_id, visited)
            if found is not None:
                return found
        return None

    def _read_value(self, ref: ObjectRef) -> Any:
        store = self._find_store_with(ref.object_id)
        if store is not None:
            return store.get(ref.object_id).value
        if self.reliable_cache is not None and self.reliable_cache.contains(ref.object_id):
            value, _ = self.reliable_cache.get(ref.object_id)
            return value
        raise UnrecoverableObjectError(f"object {ref.object_id!r} has no live copy")

    # -- public API: tasks -----------------------------------------------------------

    def submit(
        self,
        func: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        compute_cost: float = 1e-4,
        output_nbytes: Optional[int] = None,
        supported_kinds: FrozenSet[DeviceKind] = frozenset({DeviceKind.CPU}),
        pinned_device: Optional[str] = None,
        name: str = "",
        gang_group: Optional[str] = None,
    ) -> ObjectRef:
        """Launch a task; returns the future for its (single) output."""
        spec = TaskSpec(
            task_id=self.ids.task_id(),
            func=func,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            compute_cost=compute_cost,
            output_nbytes=output_nbytes,
            supported_kinds=frozenset(supported_kinds),
            pinned_device=pinned_device,
            name=name,
            gang_group=gang_group,
        )
        return self._submit_spec(spec)

    def _submit_spec(self, spec: TaskSpec) -> ObjectRef:
        oid = self.ids.object_id()
        self.ownership.create(oid, owner=DRIVER, task_id=spec.task_id)
        ref = ObjectRef(oid, owner=DRIVER, task_id=spec.task_id)
        self.lineage.record(spec, [oid])
        ctx = _TaskCtx(spec, ref, Signal(self.sim))
        ctx.timeline.submitted = self.sim.now
        self._ctxs[spec.task_id] = ctx
        self._ctx_of_object[oid] = ctx
        if spec.gang_group is not None:
            self._gangs.setdefault(spec.gang_group, []).append(ctx)
            return ref
        self._route(ctx)
        return ref

    def launch_gang(self, gang_group: str) -> List[ObjectRef]:
        """Dispatch all tasks submitted under ``gang_group`` atomically."""
        ctxs = self._gangs.pop(gang_group, [])
        if not ctxs:
            raise KeyError(f"no pending tasks in gang {gang_group!r}")
        placements = self.scheduler.place_gang([c.spec for c in ctxs])
        for ctx in ctxs:
            ctx.device = placements[ctx.spec.task_id]
            self._route(ctx, preplaced=True)
        return [c.ref for c in ctxs]

    def _route(self, ctx: _TaskCtx, preplaced: bool = False) -> None:
        """Decide when to dispatch, per resolution mode."""
        if self.config.resolution == ResolutionMode.PUSH:
            # Eager: place now, subscribe to inputs, raylet waits for pushes.
            self._dispatch(ctx, preplaced=preplaced)
            return
        if self._deps_ready(ctx.spec):
            self._dispatch(ctx, preplaced=preplaced)
        else:
            self._waiting.append(ctx)

    def _deps_ready(self, spec: TaskSpec) -> bool:
        return all(self.ownership.is_ready(r.object_id) for r in spec.dependencies)

    def _dispatch(self, ctx: _TaskCtx, preplaced: bool = False) -> None:
        if not preplaced or ctx.device is None:
            ctx.device = self.scheduler.place(ctx.spec)
            # skip dead devices
            if not self._device_alive(ctx.device.device_id):
                live = [
                    d
                    for d in self.scheduler.candidates(ctx.spec)
                    if self._device_alive(d.device_id)
                ]
                if not live:
                    raise PlacementError(
                        f"no live device for task {ctx.spec.task_id}"
                    )
                ctx.device = live[0]
        ctx.raylet = self.raylet_for_device(ctx.device.device_id)
        ctx.state = TaskState.SCHEDULED
        if self.config.resolution == ResolutionMode.PUSH:
            self._register_subscriptions(ctx)
        ctx.proc = self.sim.process(self._run_task(ctx), name=f"task:{ctx.spec.task_id}")

    # -- push-mode plumbing ----------------------------------------------------------

    def _arrival_signal(self, object_id: str, device_id: str) -> Signal:
        key = (object_id, device_id)
        sig = self._arrivals.get(key)
        if sig is None:
            sig = Signal(self.sim)
            self._arrivals[key] = sig
        return sig

    def _register_subscriptions(self, ctx: _TaskCtx) -> None:
        assert ctx.device is not None and ctx.raylet is not None
        for ref in ctx.spec.dependencies:
            oid = ref.object_id
            if ctx.raylet.store_of(ctx.device.device_id).contains(oid):
                sig = self._arrival_signal(oid, ctx.device.device_id)
                if not sig.triggered:
                    sig.succeed()
                continue
            self._subs.setdefault(oid, []).append(ctx)
            if self.ownership.is_ready(oid):
                # producer already done: push starts immediately
                self.sim.process(
                    self._push_to(oid, ctx), name=f"push:{oid}->{ctx.device.device_id}"
                )

    def _push_to(self, object_id: str, ctx: _TaskCtx) -> Generator:
        """Producer-side proactive push of one object to a consumer device."""
        assert ctx.device is not None and ctx.raylet is not None
        sig = self._arrival_signal(object_id, ctx.device.device_id)
        if sig.triggered:
            return
        src_store = self._find_store_with(object_id)
        if src_store is None:
            return  # lost; recovery path will handle it
        entry = self.ownership.entry(object_id)
        dst_store = ctx.raylet.store_of(ctx.device.device_id)
        if src_store is not dst_store:
            yield self.net.transfer(
                src_store.device.device_id,
                ctx.device.device_id,
                entry.nbytes,
                label=f"push:{object_id}",
            )
            if not dst_store.contains(object_id):
                dst_store.put(object_id, src_store.get(object_id).value, entry.nbytes)
                self.ownership.add_location(object_id, ctx.device.node_id)
        if not sig.triggered:
            sig.succeed()

    # -- pull-mode plumbing ----------------------------------------------------------

    def _pull(self, ref: ObjectRef, ctx: _TaskCtx) -> Generator:
        """Ray's default resolution: locate via GCS, then fetch on demand.

        Fast path: when the raylet itself manages a copy (Gen-1's DPU raylet
        owns all of its card's memory — the Figure 3 ownership extension),
        it skips the GCS and pull-request RPCs; it still pays its control
        handling and the intra-card transfer through the DPU.
        """
        assert ctx.device is not None and ctx.raylet is not None
        raylet = ctx.raylet
        sibling_store = raylet.find_object(ref.object_id)
        if sibling_store is not None:
            yield raylet.control()
            src_store = sibling_store
            entry = self.ownership.entry(ref.object_id)
        else:
            # 1. location lookup round-trip to the GCS
            yield self.net.rpc(raylet.endpoint, self.gcs_endpoint, label="locate")
            entry = self.ownership.entry(ref.object_id)
            if entry.state != ValueState.READY:
                raise UnrecoverableObjectError(
                    f"pull of {ref.object_id!r} in state {entry.state.value}"
                )
            src_store = self._find_store_with(ref.object_id)
            if src_store is None:
                raise UnrecoverableObjectError(
                    f"{ref.object_id!r} marked ready but no live copy found"
                )
            # 2. pull request round-trip to the source raylet (+ its handling
            # cost); spilled objects are served by the blade controller
            src_raylet = self._raylet_of_device.get(src_store.device.device_id)
            src_endpoint = (
                src_raylet.endpoint
                if src_raylet is not None
                else src_store.device.device_id
            )
            yield self.net.rpc(raylet.endpoint, src_endpoint, label="pullreq")
            if src_raylet is not None:
                yield src_raylet.control()
        # 3. bulk data transfer to the consumer device
        yield self.net.transfer(
            src_store.device.device_id,
            ctx.device.device_id,
            entry.nbytes,
            label=f"pull:{ref.object_id}",
        )
        dst_store = raylet.store_of(ctx.device.device_id)
        if not dst_store.contains(ref.object_id):
            dst_store.put(ref.object_id, src_store.get(ref.object_id).value, entry.nbytes)
            self.ownership.add_location(ref.object_id, ctx.device.node_id)

    # -- the task lifecycle -------------------------------------------------------------

    def _run_task(self, ctx: _TaskCtx) -> Generator:
        spec, device, raylet = ctx.spec, ctx.device, ctx.raylet
        assert device is not None and raylet is not None
        try:
            # 1. lease travels scheduler -> raylet; raylet handles it
            yield self.net.message(self.scheduler.endpoint, raylet.endpoint, label="lease")
            yield raylet.control()
            ctx.timeline.dispatched = self.sim.now
            ctx.state = TaskState.RESOLVING

            # 2. argument resolution: inputs must reach *this device's*
            # store — a copy on a sibling device of the same card still has
            # to cross the intra-card link (through the DPU)
            local_store = raylet.store_of(device.device_id)
            missing = [
                ref
                for ref in spec.dependencies
                if not local_store.contains(ref.object_id)
            ]
            if self.config.resolution == ResolutionMode.PULL:
                if missing:
                    yield self.sim.all_of(
                        [
                            self.sim.process(
                                self._pull(ref, ctx), name=f"pull:{ref.object_id}"
                            )
                            for ref in missing
                        ]
                    )
            else:
                sigs = [
                    self._arrival_signal(ref.object_id, device.device_id)
                    for ref in spec.dependencies
                ]
                pending = [s for s in sigs if not s.triggered]
                if pending:
                    yield self.sim.all_of(pending)
            ctx.timeline.inputs_ready = self.sim.now

            # Gen-1: the DPU raylet must poke the companion device
            if raylet.endpoint != device.device_id:
                yield self.net.message(raylet.endpoint, device.device_id, label="launch")

            # 3. actor serialization, if any
            if spec.actor_id is not None:
                yield self._actor_acquire(spec.actor_id)
            try:
                # 4. burn device time, then run the real payload
                ctx.state = TaskState.RUNNING
                self.scheduler.task_started(device.device_id)
                started_proc = device.execute(spec.compute_cost, label=spec.name)
                ctx.timeline.started = self.sim.now
                yield started_proc
                value, nbytes = self._execute_payload(ctx)
            finally:
                if spec.actor_id is not None:
                    self._actor_release(spec.actor_id)
                self.scheduler.task_finished(device.device_id)

            # 5. store the output locally
            store = raylet.store_of(device.device_id)
            if store.contains(ctx.ref.object_id):  # replay may have raced
                store.delete(ctx.ref.object_id)
            store.put(ctx.ref.object_id, value, nbytes)
            self.ownership.mark_ready(
                ctx.ref.object_id, device.node_id, nbytes, device.device_id
            )

            # 6. optional reliable-cache write (replication/EC)
            if self.reliable_cache is not None:
                cost = self.reliable_cache.put(
                    ctx.ref.object_id, value, nbytes, preferred_node=device.node_id
                )
                yield self.sim.timeout(cost)

            # 7. completion notification back to the scheduler/GCS
            yield self.net.message(raylet.endpoint, self.scheduler.endpoint, label="done")
            ctx.state = TaskState.FINISHED
            ctx.timeline.finished = self.sim.now
            ctx.timeline.device_id = device.device_id
            self.tasks_finished += 1
            if self.config.track_task_timeline:
                self.timelines.append(ctx.timeline)

            # 8. proactive pushes to subscribed consumers
            if self.config.resolution == ResolutionMode.PUSH:
                for sub in self._subs.pop(ctx.ref.object_id, []):
                    self.sim.process(
                        self._push_to(ctx.ref.object_id, sub),
                        name=f"push:{ctx.ref.object_id}",
                    )
            self._on_object_ready(ctx.ref.object_id)
            ctx.done.succeed()
        except Interrupt:
            # node died under us: resubmit elsewhere
            ctx.replays += 1
            if ctx.replays > self.config.max_lineage_replays:
                ctx.state = TaskState.FAILED
                ctx.error = "interrupted too many times"
                ctx.done.succeed()
                return
            ctx.device = None
            ctx.raylet = None
            ctx.state = TaskState.PENDING
            self._route(ctx)
        except Exception as exc:  # payload or protocol error
            if isinstance(exc, (UnrecoverableObjectError, PlacementError)):
                raise
            ctx.state = TaskState.FAILED
            ctx.error = f"{type(exc).__name__}: {exc}"
            self.tasks_failed += 1
            ctx.done.succeed()

    def _execute_payload(self, ctx: _TaskCtx) -> Tuple[Any, int]:
        """Run the real Python function with resolved arguments."""
        spec = ctx.spec
        assert ctx.raylet is not None
        resolved: Dict[str, Any] = {}
        for ref in spec.dependencies:
            store = ctx.raylet.find_object(ref.object_id)
            if store is None:
                raise UnrecoverableObjectError(
                    f"argument {ref.object_id!r} vanished before execution"
                )
            resolved[ref.object_id] = store.get(ref.object_id).value
        args = replace_refs(list(spec.args), resolved)
        kwargs = replace_refs(dict(spec.kwargs), resolved)
        if spec.actor_id is not None:
            if spec.actor_id in self._dead_actors:
                raise TaskError(
                    f"actor {spec.actor_id} is dead: {self._dead_actors[spec.actor_id]}"
                )
            state = self._actor_state[spec.actor_id]
            value = spec.func(state, *args, **kwargs)
        else:
            value = spec.func(*args, **kwargs)
        nbytes = (
            spec.output_nbytes
            if spec.output_nbytes is not None
            else estimate_nbytes(value)
        )
        return value, nbytes

    def _on_object_ready(self, object_id: str) -> None:
        """Pull mode: newly-ready objects may unblock waiting tasks."""
        if not self._waiting:
            return
        still_waiting: List[_TaskCtx] = []
        for ctx in self._waiting:
            if self._deps_ready(ctx.spec):
                self._dispatch(ctx)
            else:
                still_waiting.append(ctx)
        self._waiting = still_waiting

    # -- actors ------------------------------------------------------------------------

    def create_actor(
        self,
        ctor: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        supported_kinds: FrozenSet[DeviceKind] = frozenset({DeviceKind.CPU}),
        pinned_device: Optional[str] = None,
    ) -> ActorHandle:
        """Instantiate a stateful actor on a device chosen by the scheduler
        (or pinned explicitly)."""
        actor_id = self.ids.actor_id()
        probe = TaskSpec(
            task_id=f"{actor_id}-placement",
            func=ctor,
            supported_kinds=frozenset(supported_kinds),
            pinned_device=pinned_device,
        )
        device = self.scheduler.place(probe)
        self._actor_state[actor_id] = ctor(*args, **(kwargs or {}))
        self._actor_queues[actor_id] = []
        self._actor_device[actor_id] = device.device_id
        return ActorHandle(self, actor_id, device.device_id)

    def _submit_actor_task(
        self,
        handle: ActorHandle,
        method: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        compute_cost: float,
        output_nbytes: Optional[int],
    ) -> ObjectRef:
        spec = TaskSpec(
            task_id=self.ids.task_id(),
            func=method,
            args=tuple(args),
            kwargs=dict(kwargs),
            compute_cost=compute_cost,
            output_nbytes=output_nbytes,
            supported_kinds=ANY_COMPUTE_KIND,
            pinned_device=handle.device_id,
            name=f"{handle.actor_id}.{getattr(method, '__name__', 'method')}",
            actor_id=handle.actor_id,
        )
        return self._submit_spec(spec)

    def _actor_acquire(self, actor_id: str):
        lock = self._actor_locks.get(actor_id)
        if lock is None:
            lock = _ActorLock(self.sim)
            self._actor_locks[actor_id] = lock
        return self.sim.process(lock.acquire(), name=f"{actor_id}:acquire")

    def _actor_release(self, actor_id: str) -> None:
        self._actor_locks[actor_id].release()

    # -- explicit memory management -----------------------------------------------------

    def free(self, refs) -> int:
        """Release objects the application no longer needs.

        Drops every in-cluster copy and the directory entry; afterwards the
        ref cannot be ``get`` (KeyError), and lineage will not resurrect it.
        Returns the number of bytes released.
        """
        refs = [refs] if isinstance(refs, ObjectRef) else list(refs)
        released = 0
        for ref in refs:
            oid = ref.object_id
            if not self.ownership.contains(oid):
                continue
            entry = self.ownership.entry(oid)
            for node_id in list(entry.locations):
                for raylet in self._raylets_by_node.get(node_id, []):
                    store = raylet.find_object(oid)
                    if store is not None and store.delete(oid):
                        released += entry.nbytes
            if self._spill_store is not None:
                self._spill_store.delete(oid)
            if self.reliable_cache is not None:
                self.reliable_cache.delete(oid)
            entry.locations.clear()
            self.ownership._entries.pop(oid, None)
            self._ctx_of_object.pop(oid, None)
        return released

    # -- checkpointing (bounding lineage depth) -------------------------------------------

    def checkpoint(self, refs) -> None:
        """Persist ready objects to durable storage.

        Recovery consults checkpoints before replaying lineage, so a
        checkpoint bounds the replay depth of everything downstream of it
        (the lineage-stash style trade: durable writes now vs. replay later).
        """
        if self.durable_store is None:
            raise RuntimeError("runtime was built without a durable store")
        refs = [refs] if isinstance(refs, ObjectRef) else list(refs)
        for ref in refs:
            oid = ref.object_id
            self.sim.run()  # ensure the producer finished
            if not self.ownership.is_ready(oid):
                raise ValueError(f"cannot checkpoint unready object {oid!r}")
            entry = self.ownership.entry(oid)
            store = self._find_store_with(oid)
            if store is None:
                raise UnrecoverableObjectError(f"{oid!r} has no live copy")
            value = store.get(oid).value
            proc = self.durable_store.put(oid, value, entry.nbytes)
            self.sim.run()
            assert proc.triggered
            self._checkpoints.add(oid)

    def _restore_from_checkpoint(self, object_id: str) -> bool:
        if (
            self.durable_store is None
            or object_id not in self._checkpoints
            or not self.durable_store.contains(object_id)
        ):
            return False
        entry = self.ownership.entry(object_id)
        proc = self.durable_store.get(object_id)
        self.sim.run()
        value = proc.value
        head = self._head_node()
        raylet = self._raylets_by_node[head.node_id][0]
        store = raylet.store_of(raylet.host_device.device_id)
        if not store.contains(object_id):
            store.put(object_id, value, entry.nbytes)
        self.ownership.mark_ready(
            object_id, head.node_id, entry.nbytes, raylet.host_device.device_id
        )
        self._on_object_ready(object_id)
        return True

    def _restore_checkpoint_frontier(self, object_id: str, visited: set) -> None:
        """Restore the shallowest checkpointed ancestors a replay of
        ``object_id`` would need (each restore pays a durable read, so
        restoring more than the frontier wastes recovery time)."""
        if object_id in visited:
            return
        visited.add(object_id)
        if not self.ownership.contains(object_id):
            return
        if self.ownership.entry(object_id).state == ValueState.READY:
            return
        if self._restore_from_checkpoint(object_id):
            return
        task = self.lineage.producer(object_id)
        if task is None:
            return
        for dep in task.dependencies:
            self._restore_checkpoint_frontier(dep.object_id, visited)

    # -- failures & recovery ----------------------------------------------------------------

    def fail_node(self, node_id: str) -> List[str]:
        """Kill a node: objects on it vanish, running tasks get interrupted.

        Returns the object ids that became LOST.
        """
        for raylet in self._raylets_by_node.get(node_id, []):
            raylet.fail()
        lost = self.ownership.drop_node(node_id)
        # actor state is volatile: actors homed on the node die with it
        for actor_id, device_id in self._actor_device.items():
            if (
                actor_id not in self._dead_actors
                and self.cluster.node_of_device(device_id).node_id == node_id
            ):
                self._dead_actors[actor_id] = f"node {node_id} failed"
                self._actor_state.pop(actor_id, None)
        # interrupt in-flight tasks placed there; they resubmit themselves
        for ctx in self._ctxs.values():
            if (
                ctx.device is not None
                and ctx.device.node_id == node_id
                and ctx.state in (TaskState.SCHEDULED, TaskState.RESOLVING, TaskState.RUNNING)
                and ctx.proc is not None
            ):
                ctx.proc.interrupt("node failure")
        return lost

    def restart_node(self, node_id: str) -> None:
        for raylet in self._raylets_by_node.get(node_id, []):
            raylet.restart()

    def _recover(self, ref: ObjectRef) -> None:
        """Bring a LOST object back: checkpoint, reliable cache, or lineage."""
        oid = ref.object_id
        if self._restore_from_checkpoint(oid):
            return
        # restore only the checkpoint *frontier* the replay actually needs:
        # walking producers from the target, stop at the first checkpointed
        # (or still-ready) ancestor on each path
        self._restore_checkpoint_frontier(oid, set())
        if self.reliable_cache is not None and self.reliable_cache.contains(oid):
            try:
                value, cost = self.reliable_cache.get(oid)
            except ObjectLostError:
                value = None
            else:
                entry = self.ownership.entry(oid)
                head = self._head_node()
                raylet = self._raylets_by_node[head.node_id][0]
                store = raylet.store_of(raylet.host_device.device_id)
                if not store.contains(oid):
                    store.put(oid, value, entry.nbytes or estimate_nbytes(value))
                self.ownership.mark_ready(
                    oid, head.node_id, entry.nbytes, raylet.host_device.device_id
                )
                # charge the reconstruction time in virtual time
                self.sim.schedule(cost, lambda: None)
                self._on_object_ready(oid)
                return
        plan = self.lineage.plan_recovery(oid, self.ownership)
        self.lineage.replays += len(plan)
        for spec in plan:
            old_ids = self.lineage.outputs_of(spec.task_id)
            for out_oid in old_ids:
                entry = self.ownership.entry(out_oid)
                entry.state = ValueState.PENDING
                entry.locations.clear()
            ctx = _TaskCtx(spec, ObjectRef(old_ids[0], task_id=spec.task_id), Signal(self.sim))
            ctx.timeline.submitted = self.sim.now
            self._ctxs[spec.task_id] = ctx
            self._ctx_of_object[old_ids[0]] = ctx
            self._route(ctx)

    # -- introspection ---------------------------------------------------------------------

    @property
    def control_messages(self) -> int:
        return self.net.stats.messages

    @property
    def bytes_moved(self) -> int:
        return self.net.stats.bytes_moved

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation (drains everything unless ``until``)."""
        return self.sim.run(until=until)

    def timeline_of(self, ref: ObjectRef) -> TaskTimeline:
        ctx = self._ctx_of_object.get(ref.object_id)
        if ctx is None:
            raise KeyError(f"no task produced {ref.object_id!r}")
        return ctx.timeline


def make_reliable_cache(cluster: Cluster, redundancy) -> CachingLayer:
    """A CachingLayer spanning the cluster's nodes, with network-true costs."""
    node_ids = [n.node_id for n in cluster.nodes.values()]

    def transfer_time(src: str, dst: str, nbytes: int) -> float:
        if src == dst:
            return 0.0
        src_ep = cluster.node(src).dominant_device.device_id
        dst_ep = cluster.node(dst).dominant_device.device_id
        return cluster.network.transfer_time_estimate(src_ep, dst_ep, nbytes)

    return CachingLayer(
        [CacheNode(nid) for nid in node_ids],
        redundancy=redundancy,
        transfer_time=transfer_time,
    )
