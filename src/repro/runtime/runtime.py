"""The stateful serverless runtime: Skadi's execution engine.

This is the paper's §2.3 built over the simulated cluster: a centralized
scheduler plus raylets (per-node in Gen-1, per-device in Gen-2), futures
resolved by a pull- or push-based protocol, a heterogeneity-aware ownership
table, per-device plasma stores with spill to disaggregated memory, lineage
or reliable-cache fault tolerance, and task/actor APIs.

Tasks carry real Python payloads — results are genuine values — while the
simulator charges virtual time for every control message, data transfer,
and device-seconds of compute, so the same run yields both correct answers
and performance shapes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Generator, List, Optional, Sequence, Tuple

from ..caching.kv import estimate_nbytes
from ..caching.store import CachingLayer, CacheNode, ObjectLostError
from ..cluster.cluster import Cluster
from ..cluster.durable import DurableStore
from ..cluster.hardware import Device, DeviceKind
from ..cluster.node import NodeKind
from ..cluster.simtime import Interrupt, Signal
from ..telemetry import Telemetry
from ..telemetry.critical_path import CriticalPathResult
from ..telemetry.critical_path import critical_path as extract_critical_path
from ..telemetry.spans import Span
from .config import AdmissionPolicy, Generation, ResolutionMode, RuntimeConfig
from .events import EventLog, RuntimeEvent
from .health import HeartbeatMonitor
from .ids import IdGenerator
from .lineage import LineageGraph, UnrecoverableObjectError
from .object_ref import ObjectRef, replace_refs
from .object_store import LocalObjectStore, SpillFailedError, StoreUnavailableError
from .overload import AdmissionRejectedError, BreakerBoard, BreakerState, RetryBudget
from .overload import retry_backoff_delay as _retry_backoff_delay
from .ownership import OwnershipTable, ValueState
from .raylet import Raylet
from .scheduler import PlacementError, Scheduler
from .task import ANY_COMPUTE_KIND, TaskSpec, TaskState

__all__ = [
    "ServerlessRuntime",
    "ActorHandle",
    "TaskError",
    "TaskCancelledError",
    "GetTimeoutError",
    "TaskTimeline",
]

DRIVER = "driver"

ACTOR_CHECKPOINT_PREFIX = "__actor__/"


class TaskError(RuntimeError):
    """A task payload raised; surfaces at ``get``."""


class TaskCancelledError(TaskError):
    """The task (or an ancestor) was cancelled; surfaces at ``get``."""


class GetTimeoutError(TimeoutError):
    """``get(timeout=...)`` expired with refs still unresolved."""


class _TransientTaskError(Exception):
    """An attempt-level protocol failure (lost lease, failed fetch) that the
    retry policy — not the application — should absorb."""


class _DeadlineExceededError(Exception):
    """An attempt noticed its task's deadline already passed — the raylet
    skips the doomed work and the task is cancelled, not retried."""


@dataclass
class TaskTimeline:
    """Per-task virtual-time milestones (benchmark raw material)."""

    task_id: str
    name: str
    submitted: float = 0.0
    dispatched: float = 0.0  # lease reached the raylet
    inputs_ready: float = 0.0  # all arguments local
    started: float = 0.0  # device slot acquired
    finished: float = 0.0
    device_id: str = ""

    @property
    def input_stall(self) -> float:
        """Time spent waiting for arguments — pull vs push attacks this."""
        return self.inputs_ready - self.dispatched

    @property
    def latency(self) -> float:
        return self.finished - self.submitted


class _TaskCtx:
    """Book-keeping for one in-flight task."""

    __slots__ = (
        "spec", "ref", "device", "raylet", "done", "state", "timeline",
        "error", "replays", "proc", "attempt", "retries", "twin", "is_clone",
        "span", "pulls", "admitted", "admit_raylet", "lease_epoch",
    )

    def __init__(self, spec: TaskSpec, ref: ObjectRef, done: Signal):
        self.spec = spec
        self.ref = ref
        self.device: Optional[Device] = None
        self.raylet: Optional[Raylet] = None
        self.done = done
        self.state = TaskState.PENDING
        self.timeline = TaskTimeline(spec.task_id, spec.name)
        self.error: Optional[str] = None
        self.replays = 0
        self.proc = None
        self.attempt = 0  # bumped per dispatch (watchdogs key off this)
        self.retries = 0  # transient-failure retries consumed
        self.twin: Optional["_TaskCtx"] = None  # speculative copy, if any
        self.is_clone = False
        self.span: Optional[Span] = None  # causal task span (telemetry)
        self.pulls: Tuple = ()  # this attempt's in-flight pull processes
        self.admitted = False  # holds a scheduler-level admission slot
        self.admit_raylet: Optional[Raylet] = None  # holds a raylet window slot
        self.lease_epoch = 0  # GCS fencing epoch stamped at dispatch (HA)


class _ActorLock:
    """FIFO mutual exclusion for one actor's method calls."""

    def __init__(self, sim):
        self.sim = sim
        self.busy = False
        self.queue: List[Signal] = []

    def acquire(self) -> Generator:
        if not self.busy:
            self.busy = True
            return
            yield  # noqa: unreachable — marks this function as a generator
        turn = Signal(self.sim)
        self.queue.append(turn)
        yield turn  # the releasing holder passes the baton; busy stays True

    def release(self) -> None:
        if self.queue:
            nxt = self.queue.pop(0)
            self.sim.schedule(0.0, nxt.succeed)
        else:
            self.busy = False


class ActorHandle:
    """Client-side handle to a stateful actor."""

    def __init__(self, runtime: "ServerlessRuntime", actor_id: str, device_id: str):
        self._runtime = runtime
        self.actor_id = actor_id
        self._initial_device_id = device_id

    @property
    def device_id(self) -> str:
        """The actor's *current* home — reconstruction may move it."""
        return self._runtime._actor_device.get(self.actor_id, self._initial_device_id)

    def call(
        self,
        method: Callable[..., Any],
        *args: Any,
        compute_cost: float = 1e-4,
        output_nbytes: Optional[int] = None,
        **kwargs: Any,
    ) -> ObjectRef:
        """Invoke ``method(state, *args, **kwargs)`` serially on the actor."""
        return self._runtime._submit_actor_task(
            self, method, args, kwargs, compute_cost, output_nbytes
        )

    def __repr__(self) -> str:
        return f"ActorHandle({self.actor_id}@{self.device_id})"


class ServerlessRuntime:
    """The distributed task execution engine over a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[RuntimeConfig] = None,
        reliable_cache: Optional[CachingLayer] = None,
        durable_store: Optional["DurableStore"] = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.net = cluster.network
        self.config = config or RuntimeConfig()
        if self.config.sim_fast_forward:
            # Opt-in analytic idle fast-forward (see RuntimeConfig): the
            # kernel jumps over instants holding only poller ticks.
            self.sim.fast_forward = True
        self.reliable_cache = reliable_cache
        self.durable_store = durable_store
        self._checkpoints: set = set()  # object ids checkpointed to durable
        self.ids = IdGenerator()
        # the telemetry plane must exist before raylets/stores are built so
        # the lower layers can be handed their (duck-typed) registries
        self.telemetry = Telemetry(clock=lambda: self.sim.now)
        self.net.metrics = self.telemetry.registry
        if not self.config.chunked_transfers:
            # legacy store-and-forward: every transfer is one chunk per hop
            self.net.chunk_bytes = None
        self.ownership = OwnershipTable()
        self.lineage = LineageGraph()
        # control-plane HA controller; stays None unless ha_replicas > 0
        # (set here so _head_node() can consult it during construction)
        self.ha = None

        self._raylets: List[Raylet] = []
        self._raylet_of_device: Dict[str, Raylet] = {}
        self._raylets_by_node: Dict[str, List[Raylet]] = {}
        self._build_raylets()

        head = self._head_node()
        self.gcs_endpoint = head.attachment_endpoint
        schedulable = [
            dev
            for dev in self.cluster.all_devices()
            if dev.kind in (DeviceKind.CPU, DeviceKind.GPU, DeviceKind.FPGA)
            and dev.device_id in self._raylet_of_device
        ]
        self.scheduler = Scheduler(
            cluster,
            self.ownership,
            self.config.scheduling,
            schedulable,
            endpoint=self.gcs_endpoint,
            metrics=self.telemetry.registry,
            contention_aware=self.config.contention_aware_placement,
        )
        self.scheduler.alive_filter = self._device_alive

        self._ctxs: Dict[str, _TaskCtx] = {}
        self._ctx_of_object: Dict[str, _TaskCtx] = {}
        self._waiting: List[_TaskCtx] = []  # pull mode: deps not yet ready
        self._gangs: Dict[str, List[_TaskCtx]] = {}
        self._subs: Dict[str, List[_TaskCtx]] = {}  # push subscriptions
        self._arrivals: Dict[Tuple[str, str], Signal] = {}
        # push-mode multicast coalescing: pushes of one object queued this
        # instant, flushed as a single spanning-tree distribution
        self._pending_pushes: Dict[str, List[_TaskCtx]] = {}
        self._actor_state: Dict[str, Any] = {}
        self._actor_locks: Dict[str, "Signal"] = {}
        self._actor_queues: Dict[str, List] = {}
        self._actor_device: Dict[str, str] = {}
        self._actor_kinds: Dict[str, FrozenSet[DeviceKind]] = {}
        self._actor_calls: Dict[str, int] = {}  # completed methods (ckpt cadence)
        self._dead_actors: Dict[str, str] = {}  # actor_id -> cause
        self._dead_nodes: set = set()  # control-plane view (detected/declared)
        # device-granular failure domains (control-plane view, like _dead_nodes)
        self._dead_devices: set = set()  # device ids declared/detected dead
        self._dead_blades: set = set()  # memory-blade node ids declared dead
        self._takeovers: Dict[str, List[str]] = {}  # node -> adopted device ids
        self._adopted_from: Dict[str, Raylet] = {}  # device id -> original raylet
        self.actor_restarts = 0
        self.timelines: List[TaskTimeline] = []
        self.tasks_finished = 0
        self.tasks_failed = 0
        self.tasks_retried = 0
        self._open_tasks = 0  # not yet FINISHED/FAILED (heartbeat liveness)
        self.log = EventLog()
        # every event-log record mirrors into skadi_incidents_total, so
        # EventLog.counts() and the metrics plane agree by construction
        self.log.on_record = self._on_incident
        reg = self.telemetry.registry
        self._m_submitted = reg.counter(
            "skadi_tasks_submitted_total", "tasks submitted to the runtime"
        )
        self._m_finished = reg.counter(
            "skadi_tasks_finished_total", "tasks that committed a result"
        )
        self._m_failed = reg.counter(
            "skadi_tasks_failed_total", "tasks that permanently failed"
        )
        self._m_retried = reg.counter(
            "skadi_tasks_retried_total", "transient-failure retries consumed"
        )
        self._m_replays = reg.counter(
            "skadi_lineage_replays_total", "tasks re-executed to rebuild lost objects"
        )
        self._m_restarts = reg.counter(
            "skadi_actor_restarts_total", "actors reconstructed from checkpoints"
        )
        self._m_speculations = reg.counter(
            "skadi_speculations_total", "speculative backup copies launched"
        )
        self._m_latency = reg.histogram(
            "skadi_task_latency_seconds", "submit-to-finish latency per task"
        )
        self._m_stall = reg.histogram(
            "skadi_task_input_stall_seconds",
            "dispatch-to-inputs-ready stall per task (pull vs push attacks this)",
        )
        self._m_waiting = reg.gauge(
            "skadi_scheduler_waiting_tasks",
            "pull-mode tasks parked waiting for dependencies",
        )
        # -- overload control (each mechanism builds only when switched on,
        # so the all-off default adds zero state, events, or virtual time)
        cfg = self.config
        self.tasks_cancelled = 0
        self.tasks_shed = 0
        self._admitted_open = 0  # tasks holding a scheduler admission slot
        self._admission_overflow: List[_TaskCtx] = []  # QUEUE_WITH_DEADLINE parking
        self._admission_deferred: List[_TaskCtx] = []  # raylet-window deferrals
        self._pumping_admission = False
        self._retry_budget: Optional[RetryBudget] = (
            RetryBudget(cfg.retry_budget_ratio, cfg.retry_budget_cap)
            if cfg.retry_budget
            else None
        )
        self._breakers: Optional[BreakerBoard] = None
        self._device_inflight: Dict[str, int] = {}  # attempts per device (breakers)
        if cfg.device_circuit_breakers:
            self._breakers = BreakerBoard(
                cfg.breaker_failure_threshold,
                cfg.breaker_reset_after,
                cfg.breaker_probe_successes,
                on_transition=self._on_breaker_transition,
            )
            self.scheduler.breaker_filter = self._breaker_allows
        # observers poked whenever an object becomes ready (chaos uses this
        # for reactive fault injection: "kill the node when X materializes")
        self.object_ready_hooks: List[Callable[[str], None]] = []
        self.health: Optional[HeartbeatMonitor] = None
        if self.config.heartbeat_interval is not None:
            self.health = HeartbeatMonitor(
                self,
                self.config.heartbeat_interval,
                self.config.heartbeat_miss_threshold,
            )
        # -- distributed sanitizer ("Skadi-TSan"): built only when asked for,
        # so the empty default adds no state and no events — every hook below
        # is a ``probe is not None`` check on its legacy path.
        self.probe = None
        # handle for the hooks that only induce happens-before edges; stays
        # None in invariants-only mode so those (hot) call sites skip even
        # their argument evaluation
        self.probe_edges = None
        if self.config.sanitizers:
            from ..analysis.dist.probe import DistProbe  # lazy: analysis is optional

            self.probe = DistProbe(
                self.config.sanitizers,
                clock=lambda: self.sim.now,
                meta={"config": self.config.describe()},
            )
            if self.probe.any_live(*DistProbe.HB_EDGE_KINDS):
                self.probe_edges = self.probe
            self.ownership.observer = self.probe.ownership_op
            for raylet in self._raylets:
                raylet.probe = self.probe
            self.log.add_observer(self._mirror_chaos_event)
        # -- control-plane HA (repro.runtime.ha): built only when standby
        # replicas are requested, so the zero default adds no state, no
        # events, and no virtual time — every hook is an ``ha is None`` check.
        if cfg.ha_replicas > 0:
            from .ha import HAController  # lazy: mirrors the probe import

            self.ha = HAController(self, cfg)
            # fan the directory observer out: the probe (if any) keeps its
            # slot, and every mutation also snapshots into the WAL
            prev_observer = self.ownership.observer
            ha = self.ha
            if prev_observer is None:
                def _observe(op, oid, old, new, locs):
                    ha.on_ownership_op(op, oid)
            else:
                def _observe(op, oid, old, new, locs, _prev=prev_observer):
                    _prev(op, oid, old, new, locs)
                    ha.on_ownership_op(op, oid)
            self.ownership.observer = _observe
        # deferred frees: objects whose free() arrived while a consumer was
        # still in flight; drained as consumers conclude (see free())
        self._deferred_frees: List[str] = []
        self.scheduler._meter_capacity()  # publish the healthy-cluster baseline

    # -- construction ----------------------------------------------------------

    def _head_node(self):
        if self.ha is not None:
            # leader-aware: after a failover the elected standby is the head
            return self.cluster.node(self.ha.leader_node)
        servers = self.cluster.nodes_of_kind(NodeKind.SERVER)
        if servers:
            return servers[0]
        return next(iter(self.cluster.nodes.values()))

    def _build_raylets(self) -> None:
        spill_store = self._build_spill_store()
        self._spill_store = spill_store
        # device id -> live Device / its object store, takeover-stable views
        # (raylet adoption rewires _raylet_of_device; these two never change)
        self._device_by_id: Dict[str, Device] = {
            dev.device_id: dev for dev in self.cluster.all_devices()
        }
        self._store_of_device: Dict[str, LocalObjectStore] = {}
        for node in self.cluster.nodes.values():
            raylets = self._raylets_for_node(node, spill_store)
            self._raylets.extend(raylets)
            self._raylets_by_node[node.node_id] = raylets
            for raylet in raylets:
                raylet.metrics = self.telemetry.registry
                for dev_id, store in raylet.stores.items():
                    store.metrics = self.telemetry.registry
                    store.on_spill = self._on_spilled
                    self._store_of_device[dev_id] = store
                for dev in raylet.devices:
                    self._raylet_of_device[dev.device_id] = raylet
        if spill_store is not None:
            self._store_of_device[spill_store.device.device_id] = spill_store

    def _build_spill_store(self) -> Optional[LocalObjectStore]:
        blades = self.cluster.nodes_of_kind(NodeKind.MEMORY_BLADE)
        if not blades:
            return None
        store = LocalObjectStore(blades[0].attachment_device)
        store.metrics = self.telemetry.registry
        return store

    def _raylets_for_node(self, node, spill_store) -> List[Raylet]:
        if node.kind == NodeKind.SERVER:
            cpu = node.first_of_kind(DeviceKind.CPU)
            return [Raylet(self.sim, cpu, list(node.devices), spill_store)]
        if node.kind == NodeKind.MEMORY_BLADE:
            return []  # blades store spilled objects; no compute raylet
        if node.kind == NodeKind.ACCELERATOR:
            return [Raylet(self.sim, node.devices[0], [node.devices[0]], spill_store)]
        # physically-disaggregated card
        dpu = node.first_of_kind(DeviceKind.DPU)
        companions = [d for d in node.devices if d.kind != DeviceKind.DPU]
        if self.config.generation == Generation.GEN1:
            return [Raylet(self.sim, dpu, companions, spill_store)]
        # Gen-2: device-specific raylet on every heterogeneous device
        return [Raylet(self.sim, dev, [dev], spill_store) for dev in companions]

    # -- helpers -----------------------------------------------------------------

    def raylet_for_device(self, device_id: str) -> Raylet:
        raylet = self._raylet_of_device.get(device_id)
        if raylet is None:
            raise KeyError(f"no raylet manages device {device_id!r}")
        return raylet

    def _device_alive(self, device_id: str) -> bool:
        raylet = self._raylet_of_device.get(device_id)
        if raylet is None or self.scheduler.is_blacklisted(device_id):
            return False
        if self.health is not None:
            # with a failure detector, the control plane only knows what the
            # heartbeats told it — no peeking at the physical alive bit
            return True
        device = self._device_by_id.get(device_id)
        return raylet.alive and (device is None or device.alive)

    # -- event log / liveness -----------------------------------------------

    def _record(self, kind: str, **detail: Any) -> RuntimeEvent:
        return self.log.record(self.sim.now, kind, **detail)

    def _on_incident(self, ev: RuntimeEvent) -> None:
        self.telemetry.registry.counter(
            "skadi_incidents_total",
            "control-plane incidents by event-log kind",
            kind=ev.kind,
        ).inc()

    def _mirror_chaos_event(self, ev: RuntimeEvent) -> None:
        """Mirror chaos-monkey injections into the dist-sanitizer trace.

        Faults strike from outside the protocol, so chaos events carry no
        causal ancestry: they live on their own ``chaos`` site and anything
        they race with is a genuine finding, not a missing edge.
        """
        if self.probe is not None and ev.kind.startswith("chaos_"):
            self.probe.emit("chaos", ev.kind, ev.detail)

    def _probe_site(self, site: str) -> None:
        """Attribute the directly-following directory mutation to ``site``.

        Only meaningful with a probe; callers must not yield between this
        and the mutation or another process could re-attribute it.
        """
        if self.probe is not None:
            self.probe.site = site

    @property
    def events(self) -> List[RuntimeEvent]:
        return self.log.events

    def _has_pending_work(self) -> bool:
        """True while any task is neither finished nor permanently failed
        (drives the heartbeat loops' lifetime)."""
        return self._open_tasks > 0

    def _progress_counter(self) -> Tuple[int, ...]:
        """A cheap fingerprint of forward progress for the stall guard."""
        return (
            self.tasks_finished,
            self.tasks_failed,
            self.tasks_retried,
            self.lineage.replays,
            self.actor_restarts,
        )

    def _find_store_with(self, object_id: str) -> Optional[LocalObjectStore]:
        """A live, reachable store holding ``object_id``, if any.

        Device-granular: a copy counts only if its backing device is alive
        AND some live raylet can serve it — which, after a DPU takeover, may
        be the head raylet rather than the card's own (dead) one.  Blade
        nodes have no raylet at all; the blade controller itself serves.
        """
        entry = self.ownership.entry(object_id)
        for node_id in sorted(entry.locations):
            node = self.cluster.nodes.get(node_id)
            if node is None:
                continue
            for dev in node.devices:
                store = self._store_of_device.get(dev.device_id)
                if store is None or not dev.alive or not store.contains(object_id):
                    continue
                raylet = self._raylet_of_device.get(dev.device_id)
                if raylet is not None and not raylet.alive:
                    continue
                return store
        # overflow objects live on the disaggregated-memory blade; an
        # untracked copy (pre-directory spill) is still found here
        if (
            self._spill_store is not None
            and self._spill_store.device.alive
            and self._spill_store.contains(object_id)
        ):
            return self._spill_store
        return None

    def _reconcile_stale_entry(self, object_id: str) -> bool:
        """The directory claims READY copies, but every claimed location is
        live, healthy hardware that does not actually hold the object — a
        fault wiped the memory and healed before any detector noticed
        (e.g. a device power-cycled while the cluster sat idle).  Drop the
        phantom locations so the entry goes LOST and normal recovery takes
        over.  Copies on *dead* hardware are left alone: declaring those is
        the failure detector's job, not ours."""
        entry = self.ownership.entry(object_id)
        if entry.state != ValueState.READY:
            return False
        if self._find_store_with(object_id) is not None:
            return False
        for node_id in entry.locations:
            node = self.cluster.nodes.get(node_id)
            if node is None:
                return False
            for dev in node.devices:
                if not dev.alive:
                    return False
                raylet = self._raylet_of_device.get(dev.device_id)
                if raylet is not None and not raylet.alive:
                    return False
        stale = sorted(entry.locations)
        self._probe_site("gcs")  # reconciliation is a directory-side act
        for node_id in stale:
            self.ownership.drop_location(object_id, node_id)
        self._record("object_reconciled", object=object_id, stale_locations=stale)
        return True

    def _on_spilled(self, object_id: str, target: LocalObjectStore) -> None:
        """Directory upkeep after an LRU spill: the copy now lives on the
        spill target's node, and any origin node that no longer holds a
        sibling copy must be dropped — otherwise a later blade death cannot
        tell which objects it actually took down."""
        if not self.ownership.contains(object_id):
            return
        entry = self.ownership.entry(object_id)
        entry.locations.add(target.node_id)
        for node_id in list(entry.locations):
            if node_id != target.node_id and not self._node_has_copy(node_id, object_id):
                entry.locations.discard(node_id)

    def _node_has_copy(self, node_id: str, object_id: str) -> bool:
        node = self.cluster.nodes.get(node_id)
        if node is None:
            return False
        return any(
            self._store_of_device.get(dev.device_id) is not None
            and self._store_of_device[dev.device_id].contains(object_id)
            for dev in node.devices
        )

    # -- public API: objects ------------------------------------------------------

    def put(self, value: Any, nbytes: Optional[int] = None) -> ObjectRef:
        """Driver-side put: store on the head node, immediately ready."""
        oid = self.ids.object_id()
        nbytes = nbytes if nbytes is not None else estimate_nbytes(value)
        self._probe_site("driver")
        self.ownership.create(oid, owner=DRIVER, task_id="")
        head = self._head_node()
        raylet = self._raylets_by_node[head.node_id][0]
        store = raylet.store_of(raylet.host_device.device_id)
        store.put(oid, value, nbytes)
        self.ownership.mark_ready(oid, head.node_id, nbytes, raylet.host_device.device_id)
        if self.probe_edges is not None:
            self.probe_edges.object_ready("driver", oid)
        self._on_object_ready(oid)
        return ObjectRef(oid, owner=DRIVER)

    def get(self, refs, timeout: Optional[float] = None) -> Any:
        """Block the driver until ref(s) resolve; returns real value(s).

        ``timeout`` is *relative* to the current virtual time; when it
        expires with refs still unresolved, :class:`GetTimeoutError` is
        raised (the refs stay valid — a later ``get`` can still resolve
        them once their producers finish).
        """
        single = isinstance(refs, ObjectRef)
        ref_list: List[ObjectRef] = [refs] if single else list(refs)
        deadline = None if timeout is None else self.sim.now + timeout
        for _attempt in range(self.config.max_lineage_replays + 1):
            self.sim.run(until=deadline)
            lost = []
            unresolved = []
            for ref in ref_list:
                ctx = self._ctx_of_object.get(ref.object_id)
                if ctx is not None and ctx.state == TaskState.FAILED:
                    raise TaskError(
                        f"task {ctx.spec.task_id} ({ctx.spec.name}) failed: {ctx.error}"
                    )
                if ctx is not None and ctx.state == TaskState.CANCELLED:
                    raise TaskCancelledError(
                        f"task {ctx.spec.task_id} ({ctx.spec.name}) was {ctx.error}"
                    )
                if not self.ownership.contains(ref.object_id):
                    raise KeyError(f"unknown object {ref.object_id!r}")
                entry = self.ownership.entry(ref.object_id)
                if entry.state == ValueState.LOST:
                    lost.append(ref)
                    unresolved.append(ref)
                elif entry.state == ValueState.PENDING:
                    unresolved.append(ref)
                    if ctx is None:
                        raise KeyError(
                            f"object {ref.object_id!r} pending with no producing task"
                        )
                    failed = self._find_failed_upstream(ref.object_id, set())
                    if failed is not None:
                        if failed.state == TaskState.CANCELLED:
                            raise TaskCancelledError(
                                f"task {failed.spec.task_id} ({failed.spec.name}) "
                                f"upstream of {ref.object_id} was {failed.error}"
                            )
                        raise TaskError(
                            f"task {failed.spec.task_id} ({failed.spec.name}) "
                            f"failed upstream of {ref.object_id}: {failed.error}"
                        )
                    # a pending target may be stuck behind a LOST input (the
                    # producing task sits in the waiting queue); recover the
                    # lost ancestors so the pipeline can resume
                    for upstream in self._find_lost_upstream(ref.object_id, set()):
                        if upstream not in [r.object_id for r in lost]:
                            lost.append(ObjectRef(upstream))
                elif not (
                    self.reliable_cache is not None
                    and self.reliable_cache.contains(ref.object_id)
                ) and self._reconcile_stale_entry(ref.object_id):
                    # READY per the directory but no copy survives anywhere:
                    # recover the reconciled-to-LOST entry like any other
                    lost.append(ref)
                    unresolved.append(ref)
            if deadline is not None and unresolved and self.sim.now >= deadline:
                raise GetTimeoutError(
                    f"{len(unresolved)}/{len(ref_list)} refs unresolved after "
                    f"timeout={timeout} (virtual time {self.sim.now:.6f})"
                )
            if not lost:
                break
            for ref in lost:
                self._recover(ref)
        else:
            raise UnrecoverableObjectError(
                f"objects still lost after {self.config.max_lineage_replays} replays"
            )
        if self.probe_edges is not None:
            # get() returning is the completion flowing back to the driver:
            # each producer's work is now ordered before whatever the driver
            # does next (a later free() is sanctioned, not racy).
            self.probe_edges.get_resolve([ref.object_id for ref in ref_list])
        values = [self._read_value(ref) for ref in ref_list]
        return values[0] if single else values

    def wait(
        self, refs: Sequence[ObjectRef], num_returns: int = 1
    ) -> Tuple[List[ObjectRef], List[ObjectRef]]:
        """Advance virtual time until ``num_returns`` of ``refs`` are ready."""
        refs = list(refs)
        if num_returns > len(refs):
            raise ValueError(f"num_returns={num_returns} > {len(refs)} refs")
        while True:
            ready = [r for r in refs if self.ownership.is_ready(r.object_id)]
            if len(ready) >= num_returns:
                not_ready = [r for r in refs if r not in ready]
                return ready[:num_returns], ready[num_returns:] + not_ready
            nxt = self.sim.peek()
            if nxt is None:
                raise RuntimeError(
                    f"wait() deadlocked: only {len(ready)}/{num_returns} refs can become ready"
                )
            self.sim.run(until=nxt)

    def _find_failed_upstream(self, object_id: str, visited: set) -> Optional[_TaskCtx]:
        """Walk a pending object's producer chain for a failed task."""
        if object_id in visited:
            return None
        visited.add(object_id)
        ctx = self._ctx_of_object.get(object_id)
        if ctx is None:
            return None
        if ctx.state in (TaskState.FAILED, TaskState.CANCELLED):
            return ctx
        for dep in ctx.spec.dependencies:
            found = self._find_failed_upstream(dep.object_id, visited)
            if found is not None:
                return found
        return None

    def _find_lost_upstream(self, object_id: str, visited: set) -> List[str]:
        """Object ids in LOST state anywhere upstream of a pending object
        (its producer is parked in the waiting queue behind them)."""
        if object_id in visited:
            return []
        visited.add(object_id)
        if (
            self.ownership.contains(object_id)
            and self.ownership.entry(object_id).state == ValueState.LOST
        ):
            return [object_id]
        ctx = self._ctx_of_object.get(object_id)
        spec = ctx.spec if ctx is not None else self.lineage.producer(object_id)
        if spec is None:
            return []
        lost: List[str] = []
        for dep in spec.dependencies:
            lost.extend(self._find_lost_upstream(dep.object_id, visited))
        return lost

    def _read_value(self, ref: ObjectRef) -> Any:
        store = self._find_store_with(ref.object_id)
        if store is not None:
            return store.get(ref.object_id).value
        if self.reliable_cache is not None and self.reliable_cache.contains(ref.object_id):
            value, _ = self.reliable_cache.get(ref.object_id)
            return value
        raise UnrecoverableObjectError(f"object {ref.object_id!r} has no live copy")

    # -- public API: tasks -----------------------------------------------------------

    def submit(
        self,
        func: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        compute_cost: float = 1e-4,
        output_nbytes: Optional[int] = None,
        supported_kinds: FrozenSet[DeviceKind] = frozenset({DeviceKind.CPU}),
        pinned_device: Optional[str] = None,
        name: str = "",
        gang_group: Optional[str] = None,
        deadline: Optional[float] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
    ) -> ObjectRef:
        """Launch a task; returns the future for its (single) output.

        ``deadline`` is an *absolute* virtual time; with deadline propagation
        enabled it flows to downstream consumers (min over producers) and
        attempts past it are skipped and cancelled.  ``priority`` only
        matters under shed-lowest-priority admission.  ``tenant`` attributes
        the task to a serving tenant: cancellation and admission-rejection
        events/metrics carry it as a label (and nothing else changes).
        """
        spec = TaskSpec(
            task_id=self.ids.task_id(),
            func=func,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            compute_cost=compute_cost,
            output_nbytes=output_nbytes,
            supported_kinds=frozenset(supported_kinds),
            pinned_device=pinned_device,
            name=name,
            gang_group=gang_group,
            deadline=deadline,
            priority=priority,
            tenant=tenant,
        )
        return self._submit_spec(spec)

    def _submit_spec(self, spec: TaskSpec) -> ObjectRef:
        if self.config.deadline_propagation:
            self._inherit_deadline(spec)
        queue_instead = False
        if self.config.admission_control:
            # may raise AdmissionRejectedError — before any ownership state
            # exists, so a rejected submission is cleanly retryable
            queue_instead = self._admission_gate(spec)
        oid = self.ids.object_id()
        self._probe_site("driver")
        self.ownership.create(oid, owner=DRIVER, task_id=spec.task_id)
        ref = ObjectRef(oid, owner=DRIVER, task_id=spec.task_id)
        self.lineage.record(spec, [oid])
        if self.probe is not None:
            self.probe.lineage_record(
                oid, spec.task_id, [r.object_id for r in spec.dependencies]
            )
            # after the gate (a rejected submission never became a task) and
            # after the owner record: the submit message the dispatch joins
            # on represents the fully-registered task
            self.probe.submit(spec.task_id)
        ctx = _TaskCtx(spec, ref, Signal(self.sim))
        ctx.timeline.submitted = self.sim.now
        self._open_task_span(ctx)
        self._m_submitted.inc()
        self._ctxs[spec.task_id] = ctx
        self._ctx_of_object[oid] = ctx
        self._open_tasks += 1
        if queue_instead:
            self._admission_overflow.append(ctx)
            if self.probe is not None:
                self.probe.adm_queue(
                    spec.task_id, self.config.admission_overflow_depth
                )
            self._record(
                "admission_queued", task=spec.task_id, name=spec.name,
                depth=len(self._admission_overflow),
            )
            self._meter_admission_depth()
            return ref
        if self.config.admission_control:
            ctx.admitted = True
            self._admitted_open += 1
        if spec.gang_group is not None:
            self._gangs.setdefault(spec.gang_group, []).append(ctx)
            return ref
        self._route(ctx)
        return ref

    def launch_gang(self, gang_group: str) -> List[ObjectRef]:
        """Dispatch all tasks submitted under ``gang_group`` atomically."""
        ctxs = self._gangs.pop(gang_group, [])
        if not ctxs:
            raise KeyError(f"no pending tasks in gang {gang_group!r}")
        placements = self.scheduler.place_gang([c.spec for c in ctxs])
        for ctx in ctxs:
            ctx.device = placements[ctx.spec.task_id]
            self._route(ctx, preplaced=True)
        return [c.ref for c in ctxs]

    def _route(self, ctx: _TaskCtx, preplaced: bool = False) -> None:
        """Decide when to dispatch, per resolution mode."""
        if self._deadline_expired(ctx.spec):
            # scheduler-side skip: never dispatch work that is already doomed
            self._cancel_and_propagate(ctx, reason="deadline_exceeded")
            return
        if self.health is not None and (self.ha is None or self.ha.gcs_up):
            # a dead GCS counts no silence: detection stays down until the
            # failover path restarts it on the election winner
            self.health.ensure_running()
        if self.ha is not None:
            self.ha.ensure_running()
        if self.config.resolution == ResolutionMode.PUSH:
            # Eager: place now, subscribe to inputs, raylet waits for pushes.
            self._dispatch(ctx, preplaced=preplaced)
            return
        if self._deps_ready(ctx.spec):
            self._dispatch(ctx, preplaced=preplaced)
        else:
            self._waiting.append(ctx)
            self._m_waiting.set(float(len(self._waiting)))

    def _deps_ready(self, spec: TaskSpec) -> bool:
        return all(self.ownership.is_ready(r.object_id) for r in spec.dependencies)

    # -- overload control: admission ------------------------------------------

    def _admission_gate(self, spec: TaskSpec) -> bool:
        """Scheduler-level bounded admission.  Returns True when the task
        should park in the overflow queue; raises
        :class:`AdmissionRejectedError` when it cannot be admitted at all."""
        cfg = self.config
        if self._admitted_open < cfg.admission_queue_depth:
            return False
        policy = cfg.admission_policy
        if policy is AdmissionPolicy.SHED_LOWEST_PRIORITY:
            victim = self._lowest_priority_pending(below=spec.priority)
            if victim is not None:
                self._count_shed("displaced_by_priority")
                self._cancel_and_propagate(victim, reason="displaced_by_priority")
                return False
        elif (
            policy is AdmissionPolicy.QUEUE_WITH_DEADLINE
            # gangs cannot park member-by-member; they fall through to reject
            and spec.gang_group is None
            and len(self._admission_overflow) < cfg.admission_overflow_depth
        ):
            return True
        # the tenant label rides along only when the submitter has one, so
        # tenant-less (single-driver) traces keep their exact legacy detail
        tenant_label = {} if spec.tenant is None else {"tenant": spec.tenant}
        self._record(
            "admission_rejected",
            task=spec.task_id,
            name=spec.name,
            open_tasks=self._admitted_open,
            **tenant_label,
        )
        self._count_shed("admission_reject")
        self.telemetry.registry.counter(
            "skadi_admission_rejected_total",
            "submissions refused by the bounded admission queue",
            **tenant_label,
        ).inc()
        if self.probe is not None:
            self.probe.adm_reject(spec.task_id)
        raise AdmissionRejectedError(
            f"admission queue full ({self._admitted_open}/{cfg.admission_queue_depth} "
            f"open tasks); task {spec.task_id} rejected",
            reason="admission_reject",
        )

    def _lowest_priority_pending(self, below: int) -> Optional["_TaskCtx"]:
        """The cheapest admitted victim: a PENDING, non-gang task with
        priority strictly below ``below`` (deterministic tie-break)."""
        victim: Optional[_TaskCtx] = None
        for ctx in self._ctxs.values():
            if (
                not ctx.admitted
                or ctx.state is not TaskState.PENDING
                or ctx.spec.gang_group is not None
                or ctx.spec.priority >= below
            ):
                continue
            if victim is None or (ctx.spec.priority, ctx.spec.task_id) < (
                victim.spec.priority,
                victim.spec.task_id,
            ):
                victim = ctx
        return victim

    def _task_closed(self, ctx: "_TaskCtx") -> None:
        """Admission bookkeeping when a task reaches a terminal state:
        release its scheduler slot and pump the overflow queue."""
        if self._deferred_frees:
            # a consumer concluding may be the last reader holding up a
            # deferred free() — drain before any admission bookkeeping
            self._pump_deferred_frees()
        if not self.config.admission_control:
            return
        if ctx.admitted:
            ctx.admitted = False
            self._admitted_open = max(0, self._admitted_open - 1)
        if not self._pumping_admission:
            self._pumping_admission = True
            try:
                self._pump_admission_overflow()
            finally:
                self._pumping_admission = False
        self._meter_admission_depth()

    def _pump_admission_overflow(self) -> None:
        while (
            self._admission_overflow
            and self._admitted_open < self.config.admission_queue_depth
        ):
            ctx = self._admission_overflow.pop(0)
            if self.probe is not None:
                self.probe.adm_release(ctx.spec.task_id)
            if ctx.state is not TaskState.PENDING:
                continue
            if ctx.spec.deadline is not None and self.sim.now >= ctx.spec.deadline:
                # parked past its deadline: shed instead of launching
                self._count_shed("queue_deadline")
                self._cancel_and_propagate(ctx, reason="queue_deadline")
                continue
            ctx.admitted = True
            self._admitted_open += 1
            try:
                self._route(ctx)
            except PlacementError as exc:
                self._retry_or_fail(ctx, cause=str(exc))

    def _meter_admission_depth(self) -> None:
        self.telemetry.registry.gauge(
            "skadi_admission_queue_depth",
            "task attempts admitted and not yet concluded, per scope",
            scope="scheduler",
        ).set(float(len(self._admission_overflow) + len(self._admission_deferred)))

    def _count_shed(self, reason: str) -> None:
        self.tasks_shed += 1
        self.telemetry.registry.counter(
            "skadi_shed_tasks_total",
            "tasks shed by overload control, by reason",
            reason=reason,
        ).inc()

    def _raylet_with_capacity(
        self, ctx: "_TaskCtx", depth: int
    ) -> Optional[Tuple[Device, Raylet]]:
        """The least-loaded live candidate whose raylet has window headroom."""
        best: Optional[Tuple[Device, Raylet]] = None
        try:
            candidates = self.scheduler.candidates(ctx.spec)
        except PlacementError:
            return None
        for device in candidates:
            if not self._device_alive(device.device_id):
                continue
            raylet = self._raylet_of_device.get(device.device_id)
            if raylet is None or not raylet.has_admission_capacity(depth):
                continue
            if best is None or (
                raylet.admission_inflight,
                device.device_id,
            ) < (best[1].admission_inflight, best[0].device_id):
                best = (device, raylet)
        return best

    def _pump_deferred(self) -> None:
        """Re-dispatch raylet-window deferrals; anything still over the
        window re-defers itself inside ``_dispatch``."""
        if not self._admission_deferred:
            return
        pending, self._admission_deferred = self._admission_deferred, []
        for ctx in pending:
            if ctx.state is not TaskState.PENDING:
                continue
            if self._deadline_expired(ctx.spec):
                self._cancel_and_propagate(ctx, reason="deadline_exceeded")
                continue
            try:
                self._dispatch(ctx)
            except PlacementError as exc:
                self._retry_or_fail(ctx, cause=str(exc))
        self._meter_admission_depth()

    def _attempt_concluded(self, ctx: "_TaskCtx", device: Optional[Device]) -> None:
        """Per-attempt bookkeeping at the end of ``_run_task``: release the
        raylet admission window slot and the breaker inflight count."""
        if self._breakers is not None and device is not None and not ctx.is_clone:
            n = self._device_inflight.get(device.device_id, 0)
            if n:
                self._device_inflight[device.device_id] = n - 1
        raylet = ctx.admit_raylet
        if raylet is not None:
            ctx.admit_raylet = None
            raylet.conclude_attempt()
            self._pump_deferred()

    # -- overload control: deadlines ------------------------------------------

    def _inherit_deadline(self, spec: TaskSpec) -> None:
        """Effective deadline = min(own, every producer's) — a consumer can
        never outlive the data it waits for."""
        own = spec.deadline
        inherited: Optional[float] = None
        for dep in spec.dependencies:
            producer = self._ctx_of_object.get(dep.object_id)
            if producer is None:
                continue
            upstream = producer.spec.deadline
            if upstream is not None and (inherited is None or upstream < inherited):
                inherited = upstream
        deadline = own
        if inherited is not None and (deadline is None or inherited < deadline):
            deadline = inherited
        spec.deadline = deadline
        if self.probe is not None:
            self.probe.deadline_inherit(spec.task_id, own, inherited, deadline)

    def _deadline_expired(self, spec: TaskSpec) -> bool:
        return (
            self.config.deadline_propagation
            and spec.deadline is not None
            and self.sim.now >= spec.deadline
        )

    # -- overload control: cancellation ---------------------------------------

    def cancel(self, ref: ObjectRef, reason: str = "user") -> bool:
        """Cooperatively cancel the task producing ``ref`` (and every
        downstream consumer that can no longer run).  Returns False when the
        task already reached a terminal state.  A timed-out ``get`` leaves
        its task running — this is how a caller abandons it for real."""
        ctx = self._ctx_of_object.get(ref.object_id)
        if ctx is None:
            return False
        return self._cancel_and_propagate(ctx, reason=reason)

    def task_state(self, ref: ObjectRef) -> TaskState:
        """The producing task's current state (serving layers poll this to
        classify a concluded request without touching internals)."""
        ctx = self._ctx_of_object.get(ref.object_id)
        if ctx is None:
            raise KeyError(f"no task produces object {ref.object_id!r}")
        return ctx.state

    def when_done(self, ref: ObjectRef, callback: Callable[[ObjectRef], None]) -> None:
        """Invoke ``callback(ref)`` when the producing task reaches *any*
        terminal state (FINISHED, FAILED or CANCELLED).  Fires on the event
        loop if the task is already terminal.  This is the completion hook
        the serving frontend builds request lifecycles on; it adds no
        events and no virtual time of its own."""
        ctx = self._ctx_of_object.get(ref.object_id)
        if ctx is None:
            raise KeyError(f"no task produces object {ref.object_id!r}")
        ctx.done.add_callback(lambda _sig: callback(ref))

    def _cancel_and_propagate(self, ctx: "_TaskCtx", reason: str) -> bool:
        if not self._cancel_ctx(ctx, reason=reason):
            return False
        self._cancel_downstream(ctx)
        return True

    def _cancel_ctx(self, ctx: "_TaskCtx", reason: str) -> bool:
        """Move one task to CANCELLED: stop its attempt, its in-flight pulls
        (releasing any fetch-dedup followers via the leader's ``end_fetch``),
        and its speculative twin.  Every cancellation source funnels here, so
        every one lands in the event log with its ``reason``."""
        if ctx.state in (TaskState.FINISHED, TaskState.FAILED, TaskState.CANCELLED):
            return False
        ctx.state = TaskState.CANCELLED
        ctx.error = f"cancelled: {reason}"
        self.tasks_cancelled += 1
        if self.probe is not None:
            self.probe.task_cancel(ctx.spec.task_id, reason)
        # tenant attribution only when the submitter carried one — the
        # label-less legacy series and event detail stay byte-identical
        tenant_label = {} if ctx.spec.tenant is None else {"tenant": ctx.spec.tenant}
        self.telemetry.registry.counter(
            "skadi_tasks_cancelled_total",
            "tasks cancelled before completion, by reason",
            reason=reason,
            **tenant_label,
        ).inc()
        self._close_failed_span(ctx, ctx.error)
        self._record(
            "task_cancelled",
            task=ctx.spec.task_id,
            name=ctx.spec.name,
            reason=reason,
            **tenant_label,
        )
        self._open_tasks = max(0, self._open_tasks - 1)
        for pull in ctx.pulls:
            if pull is not None and not pull.triggered:
                pull.interrupt(f"cancelled: {reason}")
        ctx.pulls = ()
        twin, ctx.twin = ctx.twin, None
        if twin is not None and twin.proc is not None and not twin.proc.triggered:
            twin.proc.interrupt(f"cancelled: {reason}")
        if ctx.proc is not None and not ctx.proc.triggered:
            ctx.proc.interrupt(f"cancelled: {reason}")
        self._task_closed(ctx)
        if not ctx.done.triggered:
            ctx.done.succeed()
        return True

    def _cancel_downstream(self, root: "_TaskCtx") -> None:
        """Cascade a cancellation to transitive consumers that have not run
        yet — their inputs will never materialize."""
        frontier = {root.ref.object_id}
        seen = set(frontier)
        while frontier:
            cancelled_oids, frontier = frontier, set()
            for ctx in list(self._ctxs.values()):
                if ctx.state not in (
                    TaskState.PENDING,
                    TaskState.SCHEDULED,
                    TaskState.RESOLVING,
                ):
                    continue
                if (
                    any(
                        dep.object_id in cancelled_oids
                        for dep in ctx.spec.dependencies
                    )
                    and self._cancel_ctx(ctx, reason="upstream_cancelled")
                    and ctx.ref.object_id not in seen
                ):
                    seen.add(ctx.ref.object_id)
                    frontier.add(ctx.ref.object_id)

    # -- overload control: circuit breakers -----------------------------------

    def _breaker_allows(self, device_id: str) -> bool:
        if self._breakers is None:
            return True
        return self._breakers.allow(
            device_id, self.sim.now, self._device_inflight.get(device_id, 0)
        )

    def _on_breaker_transition(
        self, device_id: str, old: BreakerState, new: BreakerState
    ) -> None:
        kind = {
            BreakerState.OPEN: "breaker_open",
            BreakerState.HALF_OPEN: "breaker_half_open",
            BreakerState.CLOSED: "breaker_closed",
        }[new]
        if self.probe is not None:
            self.probe.breaker_flip(device_id, old.name, new.name)
        self._record(kind, device=device_id, previous=old.value)
        if self.ha is not None:
            self.ha.append("breaker", device=device_id, state=new.name)
        reg = self.telemetry.registry
        reg.counter(
            "skadi_breaker_transitions_total",
            "circuit-breaker state changes, by device and new state",
            device=device_id,
            state=new.value,
        ).inc()
        reg.gauge(
            "skadi_breaker_state",
            "per-device breaker state: 0 closed, 1 half-open, 2 open",
            device=device_id,
        ).set(
            {BreakerState.CLOSED: 0.0, BreakerState.HALF_OPEN: 1.0,
             BreakerState.OPEN: 2.0}[new]
        )

    def _on_endpoint_suspected(self, raylet: Raylet) -> None:
        """Heartbeat suspicion feeds the breakers: a silent raylet's devices
        accumulate failures so placement stops preferring them even before
        the miss threshold declares them dead."""
        if self._breakers is None:
            return
        for dev in raylet.devices:
            self._breakers.record_failure(dev.device_id, self.sim.now)

    # -- span tracing --------------------------------------------------------

    def _open_task_span(self, ctx: _TaskCtx, replayed: bool = False) -> None:
        """Open the task's causal span.  Links point at the spans of the
        input producers; the trace id propagates from the first one, so a
        connected DAG shares one trace."""
        spec = ctx.spec
        links: List[str] = []
        trace_id: Optional[str] = None
        for dep in spec.dependencies:
            producer = self._ctx_of_object.get(dep.object_id)
            if producer is not None and producer.span is not None:
                links.append(producer.span.span_id)
                if trace_id is None:
                    trace_id = producer.span.trace_id
        ctx.span = self.telemetry.tracer.start_span(
            spec.name or spec.task_id,
            "task",
            trace_id=trace_id,
            links=tuple(links),
            start=self.sim.now,
            task_id=spec.task_id,
            replayed=replayed,
        )

    def _span_of(self, ctx: _TaskCtx) -> Optional[Span]:
        """The task's span — clones borrow the original's."""
        if ctx.span is not None:
            return ctx.span
        main = self._ctxs.get(ctx.spec.task_id)
        return main.span if main is not None else None

    def _finish_task_span(self, main: _TaskCtx, winner: _TaskCtx) -> None:
        """Close the task span with the winning attempt's milestones and
        emit its phase children (the critical-path extractor's raw input)."""
        span = main.span
        if span is None or not span.is_open:
            return
        tl = winner.timeline
        if winner.device is not None:
            span.node = winner.device.node_id
            span.device = winner.device.device_id
        span.attrs.update(
            dispatched=tl.dispatched,
            inputs_ready=tl.inputs_ready,
            started=tl.started,
            retries=main.retries,
        )
        span.finish(tl.finished)
        for phase, category, lo, hi in (
            ("schedule", "queue", tl.submitted, tl.dispatched),
            ("resolve-inputs", "transfer", tl.dispatched, tl.inputs_ready),
            ("wait-device", "queue", tl.inputs_ready, tl.started),
            ("execute", "compute", tl.started, tl.finished),
        ):
            if hi - lo > 0:
                self.telemetry.tracer.emit(
                    f"{span.name}:{phase}",
                    category,
                    lo,
                    hi,
                    parent=span,
                    node=span.node,
                    device=span.device,
                )

    def _close_failed_span(self, ctx: _TaskCtx, error: str) -> None:
        if ctx.span is not None and ctx.span.is_open:
            ctx.span.attrs.update(error=error, retries=ctx.retries)
            ctx.span.finish(self.sim.now)

    def _dispatch(self, ctx: _TaskCtx, preplaced: bool = False) -> None:
        spec = ctx.spec
        if self.ha is not None and not self.ha.gcs_up:
            # the control plane is down: no leader can grant a lease.  Park
            # the dispatch; failover re-routes everything parked here.
            ctx.state = TaskState.PENDING
            self.ha.park(ctx)
            return
        if spec.actor_id is not None:
            # reconstruction may have re-homed the actor since submission
            home = self._actor_device.get(spec.actor_id)
            if home is not None:
                spec.pinned_device = home
        if not preplaced or ctx.device is None:
            ctx.device = self.scheduler.place(spec)
            # skip dead devices
            if not self._device_alive(ctx.device.device_id):
                live = [
                    d
                    for d in self.scheduler.candidates(spec)
                    if self._device_alive(d.device_id)
                ]
                if not live:
                    raise PlacementError(
                        f"no live device for task {spec.task_id}"
                    )
                ctx.device = live[0]
        ctx.raylet = self.raylet_for_device(ctx.device.device_id)
        depth = self.config.raylet_admission_depth
        if depth is not None and not ctx.is_clone and not preplaced:
            if not ctx.raylet.has_admission_capacity(depth):
                # steer to a candidate raylet with window headroom, else park
                # until some attempt on any raylet concludes
                alt = self._raylet_with_capacity(ctx, depth)
                if alt is None:
                    ctx.device = None
                    ctx.raylet = None
                    ctx.state = TaskState.PENDING
                    self._admission_deferred.append(ctx)
                    self._meter_admission_depth()
                    return
                ctx.device, ctx.raylet = alt
            ctx.admit_raylet = ctx.raylet
            ctx.raylet.admit_attempt()
        if self._breakers is not None and not ctx.is_clone:
            dev_id = ctx.device.device_id
            self._device_inflight[dev_id] = self._device_inflight.get(dev_id, 0) + 1
        ctx.state = TaskState.SCHEDULED
        ctx.attempt += 1
        if self.ha is not None:
            # fencing: the lease carries the granting leader's epoch, and the
            # grant itself is a replicated control-plane write
            ctx.lease_epoch = self.ha.epoch
            self.ha.append(
                "lease",
                task=spec.task_id,
                attempt=ctx.attempt,
                device=ctx.device.device_id,
                epoch=self.ha.epoch,
            )
        if self.probe_edges is not None and not ctx.is_clone:
            self.probe_edges.dispatch(
                spec.task_id,
                ctx.attempt,
                ctx.device.device_id,
                [r.object_id for r in spec.dependencies],
            )
        if self.config.resolution == ResolutionMode.PUSH:
            self._register_subscriptions(ctx)
        ctx.proc = self.sim.process(self._run_task(ctx), name=f"task:{spec.task_id}")
        if self.config.task_timeout is not None:
            self.sim.process(
                self._timeout_watch(ctx, ctx.attempt), name=f"ttl:{spec.task_id}"
            )
        if (
            self.config.speculation_factor is not None
            and spec.actor_id is None  # actors are stateful: never speculate
            and not ctx.is_clone
        ):
            self.sim.process(
                self._speculation_watch(ctx, ctx.attempt), name=f"spy:{spec.task_id}"
            )

    # -- push-mode plumbing ----------------------------------------------------------

    def _arrival_signal(self, object_id: str, device_id: str) -> Signal:
        key = (object_id, device_id)
        sig = self._arrivals.get(key)
        if sig is None:
            sig = Signal(self.sim)
            self._arrivals[key] = sig
        return sig

    def _register_subscriptions(self, ctx: _TaskCtx) -> None:
        assert ctx.device is not None and ctx.raylet is not None
        for ref in ctx.spec.dependencies:
            oid = ref.object_id
            if ctx.raylet.store_of(ctx.device.device_id).contains(oid):
                sig = self._arrival_signal(oid, ctx.device.device_id)
                if not sig.triggered:
                    sig.succeed()
                continue
            self._subs.setdefault(oid, []).append(ctx)
            if self.ownership.is_ready(oid):
                # producer already done: push starts immediately
                self._queue_push(oid, ctx)

    def _queue_push(self, object_id: str, ctx: _TaskCtx) -> None:
        """Start (or coalesce) a proactive push of one object to one consumer.

        With multicast enabled, pushes of the same object queued at the same
        virtual instant are batched and flushed one event later as a single
        spanning-tree distribution; otherwise each consumer gets a unicast.
        """
        assert ctx.device is not None
        if not self.config.multicast_pushes:
            self.sim.process(
                self._push_to(object_id, ctx),
                name=f"push:{object_id}->{ctx.device.device_id}",
            )
            return
        batch = self._pending_pushes.setdefault(object_id, [])
        batch.append(ctx)
        if len(batch) == 1:
            self.sim.schedule(0.0, self._flush_pushes, object_id)

    def _flush_pushes(self, object_id: str) -> None:
        batch = self._pending_pushes.pop(object_id, [])
        if not batch:
            return
        by_dev: Dict[str, _TaskCtx] = {}
        for ctx in batch:
            assert ctx.device is not None
            by_dev.setdefault(ctx.device.device_id, ctx)
        if len(by_dev) == 1:
            # a single consumer device: a tree would degenerate to the route
            ctx = next(iter(by_dev.values()))
            self.sim.process(
                self._push_to(object_id, ctx),
                name=f"push:{object_id}->{ctx.device.device_id}",
            )
            return
        self.sim.process(
            self._multicast_push(object_id, by_dev), name=f"mcast:{object_id}"
        )

    def _multicast_push(self, object_id: str, by_dev: Dict[str, _TaskCtx]) -> Generator:
        """Distribute one ready object to a wave of consumer devices along a
        spanning tree: each fabric link serializes the payload once, however
        many consumers sit behind it."""
        src_store = self._find_store_with(object_id)
        if src_store is None:
            return  # lost; recovery path will handle it
        entry = self.ownership.entry(object_id)
        src_dev = src_store.device.device_id
        targets: List[str] = []
        for dev_id in sorted(by_dev):
            sig = self._arrival_signal(object_id, dev_id)
            if sig.triggered:
                continue
            ctx = by_dev[dev_id]
            assert ctx.raylet is not None
            if dev_id == src_dev or ctx.raylet.store_of(dev_id).contains(object_id):
                sig.succeed()
                continue
            targets.append(dev_id)
        if not targets:
            return
        mcast_site = f"mcast:{object_id}"
        if self.probe_edges is not None:
            self.probe_edges.push_start(mcast_site, object_id, targets=len(targets))
        # register each leg with the fetch-dedup registry so concurrent
        # pulls/pushes of the same object ride this distribution
        guards: List[Tuple[Raylet, str]] = []
        if self.config.fetch_dedup:
            for dev_id in targets:
                raylet = self._raylet_of_device.get(dev_id)
                if raylet is not None and raylet.pending_fetch(object_id, dev_id) is None:
                    raylet.begin_fetch(object_id, dev_id)
                    guards.append((raylet, dev_id))
        span = self.telemetry.tracer.start_span(
            f"mcast:{object_id}",
            "transfer",
            object_id=object_id,
            nbytes=entry.nbytes,
            consumers=len(targets),
        )
        try:
            delivered = yield self.net.multicast(
                src_dev, targets, entry.nbytes, label=f"push:{object_id}"
            )
        finally:
            span.finish(self.sim.now)
            for raylet, dev_id in guards:
                raylet.end_fetch(object_id, dev_id)
        reached = set(delivered or [])
        self._probe_site(mcast_site)  # no yields below until every add_location
        for dev_id in targets:
            if dev_id not in reached:
                continue  # partitioned off; its pull-retry path takes over
            ctx = by_dev[dev_id]
            assert ctx.device is not None and ctx.raylet is not None
            dst_store = ctx.raylet.store_of(dev_id)
            if not dst_store.contains(object_id):
                try:
                    dst_store.put(
                        object_id, src_store.get(object_id).value, entry.nbytes
                    )
                except (SpillFailedError, StoreUnavailableError):
                    continue
                self.ownership.add_location(object_id, ctx.device.node_id)
            sig = self._arrival_signal(object_id, dev_id)
            if not sig.triggered:
                sig.succeed()

    def _push_to(self, object_id: str, ctx: _TaskCtx) -> Generator:
        """Producer-side proactive push of one object to a consumer device."""
        assert ctx.device is not None and ctx.raylet is not None
        sig = self._arrival_signal(object_id, ctx.device.device_id)
        if sig.triggered:
            return
        push_site = f"push:{object_id}->{ctx.device.device_id}"
        if self.probe_edges is not None:
            self.probe_edges.push_start(push_site, object_id)
        if self.config.fetch_dedup:
            pending = ctx.raylet.pending_fetch(object_id, ctx.device.device_id)
            if pending is not None:
                # another push/pull is already moving this object here
                ctx.raylet.note_deduped_fetch(ctx.device.device_id, object_id)
                yield pending
                if self.probe is not None:
                    self.probe.fetch_join(
                        push_site, object_id, ctx.device.device_id
                    )
                if (
                    ctx.raylet.store_of(ctx.device.device_id).contains(object_id)
                    and not sig.triggered
                ):
                    sig.succeed()
                return
        src_store = self._find_store_with(object_id)
        if src_store is None:
            return  # lost; recovery path will handle it
        entry = self.ownership.entry(object_id)
        dst_store = ctx.raylet.store_of(ctx.device.device_id)
        if src_store is not dst_store:
            guard = (
                self.config.fetch_dedup
                and ctx.raylet.pending_fetch(object_id, ctx.device.device_id) is None
            )
            if guard:
                ctx.raylet.begin_fetch(object_id, ctx.device.device_id)
            span = self.telemetry.tracer.start_span(
                f"push:{object_id}",
                "transfer",
                parent=self._span_of(ctx),
                node=ctx.device.node_id,
                device=ctx.device.device_id,
                object_id=object_id,
                nbytes=entry.nbytes,
            )
            try:
                yield self.net.transfer(
                    src_store.device.device_id,
                    ctx.device.device_id,
                    entry.nbytes,
                    label=f"push:{object_id}",
                )
            finally:
                span.finish(self.sim.now)
                if guard:
                    ctx.raylet.end_fetch(object_id, ctx.device.device_id)
            if not dst_store.contains(object_id):
                try:
                    dst_store.put(object_id, src_store.get(object_id).value, entry.nbytes)
                except (SpillFailedError, StoreUnavailableError):
                    return  # the consumer's pull-retry path will surface this
                self._probe_site(push_site)
                self.ownership.add_location(object_id, ctx.device.node_id)
        if not sig.triggered:
            sig.succeed()

    # -- pull-mode plumbing ----------------------------------------------------------

    def _pull(self, ref: ObjectRef, ctx: _TaskCtx) -> Generator:
        """Ray's default resolution: locate via GCS, then fetch on demand.

        Fast path: when the raylet itself manages a copy (Gen-1's DPU raylet
        owns all of its card's memory — the Figure 3 ownership extension),
        it skips the GCS and pull-request RPCs; it still pays its control
        handling and the intra-card transfer through the DPU.
        """
        assert ctx.device is not None and ctx.raylet is not None
        span = self.telemetry.tracer.start_span(
            f"pull:{ref.object_id}",
            "transfer",
            parent=self._span_of(ctx),
            node=ctx.device.node_id,
            device=ctx.device.device_id,
            object_id=ref.object_id,
        )
        try:
            yield from self._pull_inner(ref, ctx)
        finally:
            span.finish(self.sim.now)

    def _pull_inner(self, ref: ObjectRef, ctx: _TaskCtx) -> Generator:
        assert ctx.device is not None and ctx.raylet is not None
        if not self.config.fetch_dedup:
            yield from self._fetch_object(ref, ctx)
            return
        device_id = ctx.device.device_id
        pending = ctx.raylet.pending_fetch(ref.object_id, device_id)
        if pending is not None:
            # another consumer on this device is already fetching the
            # object: ride its transfer instead of paying the bytes again.
            # If the leader fails, the local-store recheck in _run_task
            # surfaces this as a transient fetch failure and retries.
            ctx.raylet.note_deduped_fetch(device_id, ref.object_id)
            if self.ownership.contains(ref.object_id):
                entry = self.ownership.entry(ref.object_id)
                reg = self.telemetry.registry
                reg.counter(
                    "skadi_fetch_dedup_bytes_saved_total",
                    "payload bytes not re-transferred thanks to fetch dedup",
                ).inc(entry.nbytes)
            yield pending
            if self.probe is not None:
                self.probe.fetch_join(
                    self.probe.attempt_site(
                        ctx.spec.task_id, ctx.attempt, ctx.is_clone
                    ),
                    ref.object_id,
                    device_id,
                )
            return
        ctx.raylet.begin_fetch(ref.object_id, device_id)
        try:
            yield from self._fetch_object(ref, ctx)
        finally:
            ctx.raylet.end_fetch(ref.object_id, device_id)

    def _fetch_object(self, ref: ObjectRef, ctx: _TaskCtx) -> Generator:
        assert ctx.device is not None and ctx.raylet is not None
        raylet = ctx.raylet
        sibling_store = raylet.find_object(ref.object_id)
        if sibling_store is not None:
            yield raylet.control()
            if self.ha is not None and not self.ownership.contains(ref.object_id):
                return  # entry vanished across a failover rebuild; retried
            src_store = sibling_store
            entry = self.ownership.entry(ref.object_id)
        else:
            # 1. location lookup round-trip to the GCS
            located = yield self.net.rpc(
                raylet.endpoint, self.gcs_endpoint, label="locate"
            )
            if located is False:
                return  # chaos ate the lookup; the caller treats it as a miss
            if self.ha is not None and (
                not self.ha.gcs_up or not self.ownership.contains(ref.object_id)
            ):
                # no leader is serving lookups (or the failover rebuild
                # dropped the entry): a transient miss, absorbed by retries
                return
            entry = self.ownership.entry(ref.object_id)
            if self.probe_edges is not None:
                # a stability-assuming read: the fetch plan built from this
                # state races with any concurrent LOST/reconcile transition
                self.probe_edges.dir_read(
                    self.probe_edges.attempt_site(
                        ctx.spec.task_id, ctx.attempt, ctx.is_clone
                    ),
                    ref.object_id,
                    entry.state.name,
                )
            if entry.state != ValueState.READY:
                return  # lost/pending: surfaces as a transient fetch failure
            src_store = self._find_store_with(ref.object_id)
            if src_store is None:
                if self._reconcile_stale_entry(ref.object_id):
                    # the fetcher is an open consumer: recover the wiped
                    # object now so its retry finds the fresh copy
                    self._recover_lost_dependencies([ref.object_id])
                return  # surfaces as a transient fetch failure; retried
            # 2. pull request round-trip to the source raylet (+ its handling
            # cost); spilled objects are served by the blade controller
            src_raylet = self._raylet_of_device.get(src_store.device.device_id)
            src_endpoint = (
                src_raylet.endpoint
                if src_raylet is not None
                else src_store.device.device_id
            )
            asked = yield self.net.rpc(raylet.endpoint, src_endpoint, label="pullreq")
            if asked is False:
                return
            if src_raylet is not None:
                yield src_raylet.control()
        # 3. bulk data transfer to the consumer device
        moved = yield self.net.transfer(
            src_store.device.device_id,
            ctx.device.device_id,
            entry.nbytes,
            label=f"pull:{ref.object_id}",
        )
        if moved is None and src_store.device.device_id != ctx.device.device_id:
            return  # a partition blocked the bulk fetch
        dst_store = raylet.store_of(ctx.device.device_id)
        if not dst_store.contains(ref.object_id):
            try:
                dst_store.put(
                    ref.object_id, src_store.get(ref.object_id).value, entry.nbytes
                )
            except (SpillFailedError, StoreUnavailableError):
                return  # surfaces as a fetch miss; the retry policy absorbs it
            if self.probe is not None:
                self.probe.site = self.probe.attempt_site(
                    ctx.spec.task_id, ctx.attempt, ctx.is_clone
                )
            self.ownership.add_location(ref.object_id, ctx.device.node_id)

    # -- the task lifecycle -------------------------------------------------------------

    def _run_task(self, ctx: _TaskCtx) -> Generator:
        device = ctx.device
        try:
            yield from self._run_task_inner(ctx)
        finally:
            # release the raylet admission window slot / breaker inflight
            # count however the attempt ended (all no-ops when overload
            # control is off)
            self._attempt_concluded(ctx, device)

    def _run_task_inner(self, ctx: _TaskCtx) -> Generator:
        spec, device, raylet = ctx.spec, ctx.device, ctx.raylet
        assert device is not None and raylet is not None
        acquired_actor = False
        counted_started = False
        try:
            # 1. lease travels scheduler -> raylet; raylet handles it.  A
            # dropped lease, or a raylet that died before handling it, is a
            # transient failure the retry policy absorbs.
            delivered = yield self.net.message(
                self.scheduler.endpoint, raylet.endpoint, label="lease"
            )
            if delivered is False or not raylet.alive:
                raise _TransientTaskError("lease lost in transit")
            if self.ha is not None:
                # split-brain fencing: a lease stamped with an older epoch
                # than this raylet has observed came from a deposed leader
                if not raylet.accepts_epoch(ctx.lease_epoch):
                    self._record(
                        "ha_stale_lease_rejected",
                        task=spec.task_id,
                        lease_epoch=ctx.lease_epoch,
                        raylet_epoch=raylet.gcs_epoch,
                        endpoint=raylet.endpoint,
                    )
                    self.ha.on_stale_lease()
                    if self.probe is not None:
                        self.probe.ha_fence(
                            raylet.endpoint, ctx.lease_epoch, raylet.gcs_epoch, False
                        )
                    raise _TransientTaskError(
                        f"lease epoch {ctx.lease_epoch} fenced "
                        f"(raylet saw {raylet.gcs_epoch})"
                    )
                if self.probe is not None:
                    self.probe.ha_fence(
                        raylet.endpoint, ctx.lease_epoch, raylet.gcs_epoch, True
                    )
                raylet.observe_epoch(ctx.lease_epoch)
            if self.probe_edges is not None:
                self.probe_edges.attempt_start(spec.task_id, ctx.attempt, ctx.is_clone)
            yield raylet.control()
            if not device.alive:
                # the raylet can see its own silicon (local knowledge, no
                # network): it refuses to launch onto a dead companion
                raise _TransientTaskError(f"device {device.device_id} is dead")
            if self._deadline_expired(spec):
                # raylet-side skip: the lease arrived past the deadline
                raise _DeadlineExceededError()
            ctx.timeline.dispatched = self.sim.now
            ctx.state = TaskState.RESOLVING

            # 2. argument resolution: inputs must reach *this device's*
            # store — a copy on a sibling device of the same card still has
            # to cross the intra-card link (through the DPU)
            local_store = raylet.store_of(device.device_id)
            missing = [
                ref
                for ref in spec.dependencies
                if not local_store.contains(ref.object_id)
            ]
            hits = len(spec.dependencies) - len(missing)
            reg = self.telemetry.registry
            if hits:
                reg.counter(
                    "skadi_store_hits_total",
                    "task arguments already resident on the executing device",
                    device=device.device_id,
                ).inc(hits)
            if missing:
                reg.counter(
                    "skadi_store_misses_total",
                    "task arguments that had to be fetched over the fabric",
                    device=device.device_id,
                ).inc(len(missing))
            if self.config.resolution == ResolutionMode.PULL:
                if missing:
                    pulls = [
                        self.sim.process(
                            self._pull(ref, ctx), name=f"pull:{ref.object_id}"
                        )
                        for ref in missing
                    ]
                    # recorded so cancellation can interrupt the fetches —
                    # a cancelled leader's ``end_fetch`` (in ``_pull_inner``'s
                    # finally) releases any dedup followers riding it
                    ctx.pulls = tuple(pulls)
                    try:
                        yield self.sim.all_of(pulls)
                    finally:
                        ctx.pulls = ()
                    still_missing = [
                        ref
                        for ref in missing
                        if not local_store.contains(ref.object_id)
                    ]
                    if still_missing:
                        raise _TransientTaskError(
                            f"failed to fetch {len(still_missing)} argument(s)"
                        )
            else:
                sigs = [
                    self._arrival_signal(ref.object_id, device.device_id)
                    for ref in spec.dependencies
                ]
                pending = [s for s in sigs if not s.triggered]
                if pending:
                    yield self.sim.all_of(pending)
            if self._deadline_expired(spec):
                # inputs took too long: skip the doomed execution
                raise _DeadlineExceededError()
            ctx.timeline.inputs_ready = self.sim.now

            # Gen-1: the DPU raylet must poke the companion device
            if raylet.endpoint != device.device_id:
                yield self.net.message(raylet.endpoint, device.device_id, label="launch")

            # 3. actor serialization, if any
            if spec.actor_id is not None:
                yield self._actor_acquire(spec.actor_id)
                acquired_actor = True
            try:
                # 4. burn device time, then run the real payload
                ctx.state = TaskState.RUNNING
                self.scheduler.task_started(device.device_id)
                counted_started = True
                started_proc = device.execute(spec.compute_cost, label=spec.name)
                ctx.timeline.started = self.sim.now
                yield started_proc
                if not raylet.alive:
                    raise _TransientTaskError("raylet died during execution")
                if not device.alive:
                    raise _TransientTaskError("device died during execution")
                value, nbytes = self._execute_payload(ctx)
                if spec.actor_id is not None and self.reliable_cache is not None:
                    self._actor_calls[spec.actor_id] = (
                        self._actor_calls.get(spec.actor_id, 0) + 1
                    )
                    cadence = max(1, self.config.actor_checkpoint_every)
                    if self._actor_calls[spec.actor_id] % cadence == 0:
                        yield from self._checkpoint_actor(spec.actor_id)
            finally:
                if acquired_actor:
                    self._actor_release(spec.actor_id)
                if counted_started:
                    self.scheduler.task_finished(device.device_id)

            # a speculative twin (or a lineage replay) may have committed the
            # result while we ran; first commit wins, the rest stand down
            main = self._ctxs.get(spec.task_id, ctx)
            if (
                main.state
                in (TaskState.FINISHED, TaskState.FAILED, TaskState.CANCELLED)
                or self.ownership.is_ready(ctx.ref.object_id)
            ):
                return

            # 5. store the output locally
            store = raylet.store_of(device.device_id)
            if store.contains(ctx.ref.object_id):  # replay may have raced
                store.delete(ctx.ref.object_id)
            try:
                store.put(ctx.ref.object_id, value, nbytes)
            except (SpillFailedError, StoreUnavailableError) as exc:
                # a dead blade refusing the spill (or an output device dying
                # under us) is a fault to retry around, not an app error
                raise _TransientTaskError(str(exc)) from None
            if self.probe is not None:
                self.probe.site = self.probe.attempt_site(
                    spec.task_id, ctx.attempt, ctx.is_clone
                )
            self.ownership.mark_ready(
                ctx.ref.object_id, device.node_id, nbytes, device.device_id
            )
            if self.probe_edges is not None:
                # the commit point: the done/ready announcements every
                # downstream recv pairs with originate here
                self.probe_edges.attempt_commit(
                    spec.task_id, ctx.attempt, ctx.ref.object_id, ctx.is_clone
                )
                self.probe_edges.object_ready(
                    self.probe_edges.site, ctx.ref.object_id
                )

            # 6. optional reliable-cache write (replication/EC)
            if self.reliable_cache is not None:
                cost = self.reliable_cache.put(
                    ctx.ref.object_id, value, nbytes, preferred_node=device.node_id
                )
                yield self.sim.timeout(cost)

            # 7. completion notification back to the scheduler/GCS
            report = None
            if self.ha is not None:
                # the raylet holds the ready-report until the GCS acks it; a
                # head that dies before acking gets it re-sent to the new
                # leader at re-registration
                report = (
                    ctx.ref.object_id,
                    device.node_id,
                    nbytes,
                    device.device_id,
                    spec.task_id,
                )
                raylet.buffer_report(report)
            delivered = yield self.net.message(
                raylet.endpoint, self.scheduler.endpoint, label="done"
            )
            if (
                report is not None
                and delivered is not False
                and self.ha.gcs_up
            ):
                raylet.ack_report(report)
            if self.probe is not None:
                self.probe.task_finish(spec.task_id)
            ctx.state = TaskState.FINISHED
            ctx.timeline.finished = self.sim.now
            ctx.timeline.device_id = device.device_id
            if main is not ctx:  # a clone won: reflect completion on the main ctx
                main.state = TaskState.FINISHED
                main.timeline.finished = self.sim.now
                main.timeline.device_id = device.device_id
            loser = main.twin if ctx is main else main
            main.twin = None
            if (
                loser is not None
                and loser.proc is not None
                and loser.state
                in (TaskState.SCHEDULED, TaskState.RESOLVING, TaskState.RUNNING)
            ):
                loser.proc.interrupt("speculative twin won")
            self.tasks_finished += 1
            self._m_finished.inc()
            self._m_latency.observe(ctx.timeline.latency)
            self._m_stall.observe(ctx.timeline.input_stall)
            self._finish_task_span(main, ctx)
            self._open_tasks = max(0, self._open_tasks - 1)
            self._task_closed(main)
            if self._retry_budget is not None and main.retries == 0:
                # only *first-attempt* successes refill the budget, so retry
                # volume stays capped at ratio x useful first-attempt volume
                self._retry_budget.refill(device.node_id)
                self.telemetry.registry.gauge(
                    "skadi_retry_budget_tokens",
                    "remaining retry-budget tokens per node",
                    node=device.node_id,
                ).set(self._retry_budget.tokens(device.node_id))
            if self._breakers is not None:
                self._breakers.record_success(device.device_id, self.sim.now)
            if self.config.track_task_timeline:
                self.timelines.append(ctx.timeline)

            # 8. proactive pushes to subscribed consumers (a wave of
            # consumers coalesces into one multicast distribution)
            if self.config.resolution == ResolutionMode.PUSH:
                for sub in self._subs.pop(ctx.ref.object_id, []):
                    if sub.state is TaskState.CANCELLED:
                        continue
                    self._queue_push(ctx.ref.object_id, sub)
            self._on_object_ready(ctx.ref.object_id)
            if not main.done.triggered:
                main.done.succeed()
        except Interrupt as intr:
            if ctx.is_clone:
                return  # backup copy: the original (or the winner) carries on
            main = self._ctxs.get(spec.task_id, ctx)
            if (
                main.state
                in (TaskState.FINISHED, TaskState.FAILED, TaskState.CANCELLED)
                or self.ownership.is_ready(ctx.ref.object_id)
            ):
                return  # interrupted after the result already committed
            self._retry_or_fail(ctx, cause=str(intr.cause or "interrupted"))
        except _DeadlineExceededError:
            if ctx.is_clone:
                return
            main = self._ctxs.get(spec.task_id, ctx)
            if (
                main.state
                in (TaskState.FINISHED, TaskState.FAILED, TaskState.CANCELLED)
                or self.ownership.is_ready(ctx.ref.object_id)
            ):
                return
            self._cancel_and_propagate(main, reason="deadline_exceeded")
        except _TransientTaskError as exc:
            if ctx.is_clone:
                return
            main = self._ctxs.get(spec.task_id, ctx)
            if (
                main.state
                in (TaskState.FINISHED, TaskState.FAILED, TaskState.CANCELLED)
                or self.ownership.is_ready(ctx.ref.object_id)
            ):
                return
            self._retry_or_fail(ctx, cause=str(exc))
        except Exception as exc:  # payload error: permanent, not retried
            if isinstance(exc, (UnrecoverableObjectError, PlacementError)):
                raise
            if ctx.is_clone:
                return  # the original will hit (and report) the same error
            self._fail_ctx(ctx, f"{type(exc).__name__}: {exc}")

    # -- retries, timeouts & speculation ------------------------------------

    def _backoff_delay(self, ctx: _TaskCtx) -> float:
        """Exponential backoff with deterministic jitter (hashed, not drawn
        from a shared RNG, so retry timing never depends on event order).
        The hash contract is pinned in ``overload.backoff_jitter_fraction``
        and documented in ``config.py``."""
        return _retry_backoff_delay(self.config, ctx.spec.task_id, ctx.retries)

    def _retry_or_fail(self, ctx: _TaskCtx, cause: str) -> None:
        # the failing attempt's device feeds the breakers and keys the
        # retry budget — capture it before the attempt state is cleared
        failed_device = ctx.device
        if self.probe_edges is not None and failed_device is not None:
            # only a real attempt (one that held a device) reports a failure;
            # placement errors never started one
            self.probe_edges.attempt_fail(ctx.spec.task_id, ctx.attempt, cause)
        if self._breakers is not None and failed_device is not None:
            self._breakers.record_failure(failed_device.device_id, self.sim.now)
        ctx.retries += 1
        ctx.device = None
        ctx.raylet = None
        ctx.proc = None
        ctx.state = TaskState.PENDING
        if ctx.retries > self.config.max_retries:
            self._fail_ctx(
                ctx, f"gave up after {self.config.max_retries} retries: {cause}"
            )
            return
        if self._retry_budget is not None:
            node = failed_device.node_id if failed_device is not None else "<cluster>"
            if not self._retry_budget.try_consume(node):
                # budget dry: shedding the retry breaks the storm's feedback
                # loop (each retry would amplify the very overload that
                # failed the first attempt)
                self.telemetry.registry.counter(
                    "skadi_retry_budget_exhausted_total",
                    "retries refused because the node's budget ran dry",
                    node=node,
                ).inc()
                self._record(
                    "retry_budget_exhausted",
                    task=ctx.spec.task_id,
                    node=node,
                    cause=cause,
                )
                self._count_shed("retry_budget_exhausted")
                self._cancel_and_propagate(ctx, reason="retry_budget_exhausted")
                return
            self.telemetry.registry.gauge(
                "skadi_retry_budget_tokens",
                "remaining retry-budget tokens per node",
                node=node,
            ).set(self._retry_budget.tokens(node))
        self.tasks_retried += 1
        self._m_retried.inc()
        delay = self._backoff_delay(ctx)
        span = self._span_of(ctx)
        if span is not None:
            # the backoff window is pure recovery time on any path through it
            self.telemetry.tracer.emit(
                f"{ctx.spec.name or ctx.spec.task_id}:backoff",
                "recovery",
                self.sim.now,
                self.sim.now + delay,
                parent=span,
                retry=ctx.retries,
                cause=cause,
            )
        if self.probe_edges is not None:
            self.probe_edges.retry(ctx.spec.task_id, ctx.attempt)
        self._record(
            "task_retry",
            task=ctx.spec.task_id,
            name=ctx.spec.name,
            retry=ctx.retries,
            cause=cause,
        )
        self.sim.schedule(delay, self._requeue, ctx)

    def _requeue(self, ctx: _TaskCtx) -> None:
        if ctx.state != TaskState.PENDING:
            return  # the race resolved while we backed off (twin won, failed)
        if self.ownership.is_ready(ctx.ref.object_id):
            return
        if ctx.spec.actor_id is not None and not self._ensure_actor_home(ctx):
            cause = self._dead_actors.get(ctx.spec.actor_id, "unknown")
            self._fail_ctx(ctx, f"actor {ctx.spec.actor_id} is dead: {cause}")
            return
        try:
            self._route(ctx)
        except PlacementError as exc:
            self._retry_or_fail(ctx, cause=str(exc))

    def _fail_ctx(self, ctx: _TaskCtx, error: str) -> None:
        ctx.state = TaskState.FAILED
        ctx.error = error
        if self.probe is not None:
            self.probe.task_fail(ctx.spec.task_id, ctx.attempt, error)
        self.tasks_failed += 1
        self._m_failed.inc()
        self._close_failed_span(ctx, error)
        self._open_tasks = max(0, self._open_tasks - 1)
        self._record(
            "task_failed", task=ctx.spec.task_id, name=ctx.spec.name, error=error
        )
        self._task_closed(ctx)
        if not ctx.done.triggered:
            ctx.done.succeed()

    def _timeout_watch(self, ctx: _TaskCtx, attempt: int) -> Generator:
        """Interrupt an attempt that outlives ``task_timeout`` (it will be
        retried elsewhere by the normal transient-failure path)."""
        yield self.sim.timeout(self.config.task_timeout)
        if (
            ctx.attempt == attempt
            and ctx.state
            in (TaskState.SCHEDULED, TaskState.RESOLVING, TaskState.RUNNING)
            and not self.ownership.is_ready(ctx.ref.object_id)
            and ctx.proc is not None
        ):
            self._record("task_timeout", task=ctx.spec.task_id, attempt=attempt)
            ctx.proc.interrupt("execution timeout")

    def _speculation_watch(self, ctx: _TaskCtx, attempt: int) -> Generator:
        """After ``speculation_factor`` × the expected runtime, launch a
        backup copy on a different device — the straggler mitigation."""
        assert ctx.device is not None
        spec_dev = ctx.device.spec
        expected = spec_dev.dispatch_overhead + spec_dev.scaled_duration(
            ctx.spec.compute_cost
        )
        yield self.sim.timeout(self.config.speculation_factor * max(expected, 1e-9))
        if (
            ctx.attempt != attempt
            or ctx.twin is not None
            or self._ctxs.get(ctx.spec.task_id) is not ctx
            or ctx.state
            not in (TaskState.SCHEDULED, TaskState.RESOLVING, TaskState.RUNNING)
            or self.ownership.is_ready(ctx.ref.object_id)
        ):
            return
        self._speculate(ctx)

    def _speculate(self, ctx: _TaskCtx) -> None:
        assert ctx.device is not None
        try:
            candidates = [
                d
                for d in self.scheduler.candidates(ctx.spec)
                if d.device_id != ctx.device.device_id
                and self._device_alive(d.device_id)
            ]
        except PlacementError:
            return
        if not candidates:
            return
        backup = min(
            candidates,
            key=lambda d: (self.scheduler.outstanding(d.device_id), d.device_id),
        )
        clone = _TaskCtx(ctx.spec, ctx.ref, ctx.done)
        clone.is_clone = True
        clone.timeline.submitted = ctx.timeline.submitted
        clone.device = backup
        clone.raylet = self.raylet_for_device(backup.device_id)
        clone.state = TaskState.SCHEDULED
        clone.attempt = 1
        ctx.twin = clone
        self._m_speculations.inc()
        if self.probe_edges is not None:
            self.probe_edges.speculate(ctx.spec.task_id)
        self._record(
            "speculate",
            task=ctx.spec.task_id,
            slow=ctx.device.device_id,
            backup=backup.device_id,
        )
        clone.proc = self.sim.process(
            self._run_task(clone), name=f"twin:{ctx.spec.task_id}"
        )

    def _checkpoint_actor(self, actor_id: str) -> Generator:
        """Snapshot the actor's state into the reliable cache (deep copy, so
        later in-place mutation cannot corrupt the checkpoint)."""
        assert self.reliable_cache is not None
        snapshot = copy.deepcopy(self._actor_state[actor_id])
        nbytes = estimate_nbytes(snapshot)
        home = self._actor_device.get(actor_id)
        node = self.cluster.node_of_device(home).node_id if home else None
        cost = self.reliable_cache.put(
            ACTOR_CHECKPOINT_PREFIX + actor_id, snapshot, nbytes, preferred_node=node
        )
        yield self.sim.timeout(cost)

    def _execute_payload(self, ctx: _TaskCtx) -> Tuple[Any, int]:
        """Run the real Python function with resolved arguments."""
        spec = ctx.spec
        assert ctx.raylet is not None
        resolved: Dict[str, Any] = {}
        for ref in spec.dependencies:
            store = ctx.raylet.find_object(ref.object_id)
            if store is None:
                raise _TransientTaskError(
                    f"argument {ref.object_id!r} vanished before execution"
                )
            resolved[ref.object_id] = store.get(ref.object_id).value
        args = replace_refs(list(spec.args), resolved)
        kwargs = replace_refs(dict(spec.kwargs), resolved)
        if spec.actor_id is not None:
            if spec.actor_id in self._dead_actors:
                raise TaskError(
                    f"actor {spec.actor_id} is dead: {self._dead_actors[spec.actor_id]}"
                )
            state = self._actor_state[spec.actor_id]
            value = spec.func(state, *args, **kwargs)
        else:
            value = spec.func(*args, **kwargs)
        nbytes = (
            spec.output_nbytes
            if spec.output_nbytes is not None
            else estimate_nbytes(value)
        )
        return value, nbytes

    def _on_object_ready(self, object_id: str) -> None:
        """Newly-ready objects poke observers and may unblock waiting tasks."""
        for hook in list(self.object_ready_hooks):
            hook(object_id)
        if not self._waiting:
            return
        still_waiting: List[_TaskCtx] = []
        for ctx in self._waiting:
            if ctx.state != TaskState.PENDING:
                continue  # failed (or got retried onto another queue) meanwhile
            if self._deps_ready(ctx.spec):
                try:
                    self._dispatch(ctx)
                except PlacementError as exc:
                    self._retry_or_fail(ctx, cause=str(exc))
            else:
                still_waiting.append(ctx)
        self._waiting = still_waiting
        self._m_waiting.set(float(len(self._waiting)))

    # -- actors ------------------------------------------------------------------------

    def create_actor(
        self,
        ctor: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        supported_kinds: FrozenSet[DeviceKind] = frozenset({DeviceKind.CPU}),
        pinned_device: Optional[str] = None,
    ) -> ActorHandle:
        """Instantiate a stateful actor on a device chosen by the scheduler
        (or pinned explicitly)."""
        actor_id = self.ids.actor_id()
        probe = TaskSpec(
            task_id=f"{actor_id}-placement",
            func=ctor,
            supported_kinds=frozenset(supported_kinds),
            pinned_device=pinned_device,
        )
        device = self.scheduler.place(probe)
        self._actor_state[actor_id] = ctor(*args, **(kwargs or {}))
        self._actor_queues[actor_id] = []
        self._actor_device[actor_id] = device.device_id
        self._actor_kinds[actor_id] = frozenset(supported_kinds)
        self._actor_calls[actor_id] = 0
        if self.reliable_cache is not None:
            # checkpoint 0: even an actor that dies before its first method
            # call can be reconstructed
            snapshot = copy.deepcopy(self._actor_state[actor_id])
            self.reliable_cache.put(
                ACTOR_CHECKPOINT_PREFIX + actor_id,
                snapshot,
                estimate_nbytes(snapshot),
                preferred_node=device.node_id,
            )
        return ActorHandle(self, actor_id, device.device_id)

    def _submit_actor_task(
        self,
        handle: ActorHandle,
        method: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        compute_cost: float,
        output_nbytes: Optional[int],
    ) -> ObjectRef:
        spec = TaskSpec(
            task_id=self.ids.task_id(),
            func=method,
            args=tuple(args),
            kwargs=dict(kwargs),
            compute_cost=compute_cost,
            output_nbytes=output_nbytes,
            supported_kinds=ANY_COMPUTE_KIND,
            pinned_device=handle.device_id,
            name=f"{handle.actor_id}.{getattr(method, '__name__', 'method')}",
            actor_id=handle.actor_id,
        )
        return self._submit_spec(spec)

    def _actor_acquire(self, actor_id: str):
        lock = self._actor_locks.get(actor_id)
        if lock is None:
            lock = _ActorLock(self.sim)
            self._actor_locks[actor_id] = lock
        return self.sim.process(lock.acquire(), name=f"{actor_id}:acquire")

    def _actor_release(self, actor_id: str) -> None:
        # reconstruction replaces the lock; a call interrupted mid-flight may
        # release into the void, which is exactly right — its generation died
        lock = self._actor_locks.get(actor_id)
        if lock is not None:
            lock.release()

    def _restore_actor(self, actor_id: str, cause: str) -> bool:
        """Restart a lost actor from its last checkpoint on a surviving node.

        Returns False (and declares the actor dead) when there is no
        checkpoint to restore from or nowhere left to place it.
        """
        key = ACTOR_CHECKPOINT_PREFIX + actor_id
        snapshot = None
        if self.reliable_cache is not None and self.reliable_cache.contains(key):
            try:
                snapshot, read_cost = self.reliable_cache.get(key)
            except ObjectLostError:
                snapshot = None
        if snapshot is None:
            self._dead_actors[actor_id] = cause
            self._actor_state.pop(actor_id, None)
            self._record("actor_dead", actor=actor_id, cause=cause)
            return False
        probe = TaskSpec(
            task_id=f"{actor_id}-restart{self.actor_restarts}",
            func=lambda: None,
            supported_kinds=self._actor_kinds.get(
                actor_id, frozenset({DeviceKind.CPU})
            ),
        )
        try:
            device = self.scheduler.place(probe)
        except PlacementError:
            self._dead_actors[actor_id] = f"{cause}; no surviving device"
            self._actor_state.pop(actor_id, None)
            self._record(
                "actor_dead", actor=actor_id, cause=f"{cause}; no surviving device"
            )
            return False
        self._actor_state[actor_id] = copy.deepcopy(snapshot)
        self._actor_device[actor_id] = device.device_id
        self._actor_locks.pop(actor_id, None)  # in-flight calls died with the node
        self.sim.schedule(read_cost, lambda: None)  # charge the checkpoint read
        self.actor_restarts += 1
        self._m_restarts.inc()
        self._record(
            "actor_restart", actor=actor_id, device=device.device_id, cause=cause
        )
        return True

    def _ensure_actor_home(self, ctx: _TaskCtx) -> bool:
        """Before (re)dispatching an actor task: is the actor somewhere live?"""
        aid = ctx.spec.actor_id
        if aid in self._dead_actors:
            return False
        if aid not in self._actor_state:
            return self._restore_actor(aid, cause="home state lost")
        home = self._actor_device.get(aid)
        if home is None or not self._device_alive(home):
            return self._restore_actor(aid, cause="home device unavailable")
        return True

    # -- explicit memory management -----------------------------------------------------

    def free(self, refs, force: bool = False) -> int:
        """Release objects the application no longer needs.

        Drops every in-cluster copy and the directory entry; afterwards the
        ref cannot be ``get`` (KeyError), and lineage will not resurrect it.
        Returns the number of bytes released *now*.

        A free targeting an object some in-flight consumer still depends on
        is **deferred**: dropping the entry under a running attempt makes
        its argument unrecoverable (the perturbation hunt in
        tests/test_dist_perturb.py pinned exactly that ordering bug), so
        the GCS quiesces first — the free completes when the last open
        consumer concludes (``free_deferred`` / ``free_completed`` events).
        ``force=True`` bypasses quiescing and replays the legacy unsafe
        drop; it exists for the sanitizer's seeded-race fixtures.
        """
        refs = [refs] if isinstance(refs, ObjectRef) else list(refs)
        released = 0
        for ref in refs:
            oid = ref.object_id
            if not self.ownership.contains(oid):
                continue
            if not force and self._open_consumers(oid):
                if oid not in self._deferred_frees:
                    self._deferred_frees.append(oid)
                    self._record("free_deferred", object=oid)
                continue
            released += self._free_object(oid, site="driver" if force else "gcs")
        return released

    def _open_consumers(self, object_id: str) -> bool:
        """Any non-terminal task (including pending retries) that lists the
        object as a dependency still needs its directory entry."""
        for ctx in self._ctxs.values():
            if ctx.state in (
                TaskState.FINISHED,
                TaskState.FAILED,
                TaskState.CANCELLED,
            ):
                continue
            if any(dep.object_id == object_id for dep in ctx.spec.dependencies):
                return True
        return False

    def _free_object(self, oid: str, site: str = "driver") -> int:
        entry = self.ownership.entry(oid)
        released = 0
        for node_id in list(entry.locations):
            for raylet in self._raylets_by_node.get(node_id, []):
                store = raylet.find_object(oid)
                if store is not None and store.delete(oid):
                    released += entry.nbytes
        if self._spill_store is not None:
            self._spill_store.delete(oid)
        if self.reliable_cache is not None:
            self.reliable_cache.delete(oid)
        if self.probe is not None:
            # a quiesced free is the GCS acting after it processed every
            # consumer's done-report: same-site program order is the honest
            # happens-before edge that makes the drop race-free.  Only the
            # legacy force path keeps the racy driver attribution.
            self.probe.site = site
            self.probe.ownership_op("free", oid, entry.state.name, None, 0)
        if self.ha is not None:
            self.ha.append("own_drop", object=oid)
        entry.locations.clear()
        self.ownership.remove(oid)
        self._ctx_of_object.pop(oid, None)
        return released

    def _pump_deferred_frees(self) -> None:
        still: List[str] = []
        for oid in self._deferred_frees:
            if not self.ownership.contains(oid):
                continue
            if self._open_consumers(oid):
                still.append(oid)
                continue
            nbytes = self._free_object(oid, site="gcs")
            self._record("free_completed", object=oid, nbytes=nbytes)
        self._deferred_frees = still

    # -- checkpointing (bounding lineage depth) -------------------------------------------

    def checkpoint(self, refs) -> None:
        """Persist ready objects to durable storage.

        Recovery consults checkpoints before replaying lineage, so a
        checkpoint bounds the replay depth of everything downstream of it
        (the lineage-stash style trade: durable writes now vs. replay later).
        """
        if self.durable_store is None:
            raise RuntimeError("runtime was built without a durable store")
        refs = [refs] if isinstance(refs, ObjectRef) else list(refs)
        for ref in refs:
            oid = ref.object_id
            self.sim.run()  # ensure the producer finished
            if not self.ownership.is_ready(oid):
                raise ValueError(f"cannot checkpoint unready object {oid!r}")
            entry = self.ownership.entry(oid)
            store = self._find_store_with(oid)
            if store is None:
                raise UnrecoverableObjectError(f"{oid!r} has no live copy")
            value = store.get(oid).value
            proc = self.durable_store.put(oid, value, entry.nbytes)
            self.sim.run()
            assert proc.triggered
            self._checkpoints.add(oid)

    def _restore_from_checkpoint(self, object_id: str) -> bool:
        if (
            self.durable_store is None
            or object_id not in self._checkpoints
            or not self.durable_store.contains(object_id)
        ):
            return False
        entry = self.ownership.entry(object_id)
        proc = self.durable_store.get(object_id)
        self.sim.run()
        value = proc.value
        head = self._head_node()
        raylet = self._raylets_by_node[head.node_id][0]
        store = raylet.store_of(raylet.host_device.device_id)
        if not store.contains(object_id):
            store.put(object_id, value, entry.nbytes)
        self._probe_site("gcs")  # recovery is a control-plane act
        self.ownership.mark_ready(
            object_id, head.node_id, entry.nbytes, raylet.host_device.device_id
        )
        if self.probe_edges is not None:
            self.probe_edges.object_ready("gcs", object_id)
        self._on_object_ready(object_id)
        return True

    def _restore_checkpoint_frontier(self, object_id: str, visited: set) -> None:
        """Restore the shallowest checkpointed ancestors a replay of
        ``object_id`` would need (each restore pays a durable read, so
        restoring more than the frontier wastes recovery time)."""
        if object_id in visited:
            return
        visited.add(object_id)
        if not self.ownership.contains(object_id):
            return
        if self.ownership.entry(object_id).state == ValueState.READY:
            return
        if self._restore_from_checkpoint(object_id):
            return
        task = self.lineage.producer(object_id)
        if task is None:
            return
        for dep in task.dependencies:
            self._restore_checkpoint_frontier(dep.object_id, visited)

    # -- failures & recovery ----------------------------------------------------------------

    def fail_node(self, node_id: str) -> List[str]:
        """Kill a node *and* tell the control plane (driver omniscience).

        Chaos crashes instead call only the physical half (``raylet.fail``)
        and let heartbeat detection discover the death the honest way.
        Returns the object ids that became LOST.
        """
        for raylet in self._raylets_by_node.get(node_id, []):
            raylet.fail()
        node = self.cluster.nodes.get(node_id)
        for dev in node.devices if node is not None else []:
            dev.fail()  # power loss takes every device down with the node
        return self._mark_node_dead(node_id, cause="killed by driver")

    def restart_node(self, node_id: str) -> None:
        node = self.cluster.nodes.get(node_id)
        for dev in node.devices if node is not None else []:
            dev.restore()
        for raylet in self._raylets_by_node.get(node_id, []):
            raylet.restart()
        if self.health is None:
            # omniscient mode: the driver's word is the control plane's truth;
            # with heartbeats the node must earn its way back with a real beat
            self._on_node_alive(node_id)

    def _mark_node_dead(self, node_id: str, cause: str) -> List[str]:
        """Control-plane reaction to a node death, however it was learned:
        blacklist, drop object locations, reconstruct actors, interrupt
        in-flight tasks.  Idempotent per death."""
        if node_id in self._dead_nodes:
            return []
        self._dead_nodes.add(node_id)
        for raylet in self._raylets_by_node.get(node_id, []):
            for dev in raylet.devices:
                self.scheduler.blacklist(dev.device_id)
        self._probe_site("gcs")  # death declarations are the detector's act
        lost = self.ownership.drop_node(node_id)
        self._record("node_dead", node=node_id, cause=cause, objects_lost=len(lost))
        if self.ha is not None:
            self.ha.append("node_dead", node=node_id)
        # actor state is volatile: actors homed there restart from their last
        # checkpoint on a surviving node, or die if there is none
        for actor_id in sorted(self._actor_device):
            if actor_id in self._dead_actors:
                continue
            device_id = self._actor_device[actor_id]
            if self.cluster.node_of_device(device_id).node_id == node_id:
                self._restore_actor(actor_id, cause=f"node {node_id} failed")
        self._interrupt_tasks_on(node_id, cause)
        return lost

    def _on_node_alive(self, node_id: str) -> None:
        """The control plane learned the node is (back) among the living."""
        if node_id not in self._dead_nodes:
            return
        self._dead_nodes.discard(node_id)
        for raylet in self._raylets_by_node.get(node_id, []):
            for dev in raylet.devices:
                self.scheduler.unblacklist(dev.device_id)
        self._record("node_alive", node=node_id)
        if self.ha is not None:
            self.ha.append("node_alive", node=node_id)

    def _interrupt_tasks_on(self, node_id: str, cause: str) -> None:
        """In-flight attempts placed on the node resubmit themselves."""
        for ctx in list(self._ctxs.values()):
            for victim in (ctx, ctx.twin):
                if (
                    victim is not None
                    and victim.device is not None
                    and victim.device.node_id == node_id
                    and victim.state
                    in (TaskState.SCHEDULED, TaskState.RESOLVING, TaskState.RUNNING)
                    and victim.proc is not None
                ):
                    victim.proc.interrupt(f"node {node_id}: {cause}")

    # -- control-plane HA: head death, election, failover ---------------------
    #
    # The chaos monkey can kill the head node (ChaosSchedule.fail_gcs).  With
    # standby replicas (RuntimeConfig.ha_replicas > 0) the HAController's
    # watch loops detect the sync silence, elect a winner, and drive
    # _complete_failover below; without replicas the control plane is simply
    # gone — _on_gcs_lost fails every open task, which is the baseline the
    # E25 benchmark measures replication against.

    def _fail_open_tasks(self, reason: str) -> None:
        """Permanently fail every non-terminal task: the control plane is
        unrecoverable (no standby, or none left alive).  Failing before
        interrupting matters — the Interrupt handler sees a terminal state
        and returns instead of scheduling a retry against a dead GCS."""
        for task_id in sorted(self._ctxs):
            ctx = self._ctxs[task_id]
            if ctx.state in (
                TaskState.FINISHED,
                TaskState.FAILED,
                TaskState.CANCELLED,
            ):
                continue
            self._fail_ctx(ctx, reason)
            for victim in (ctx, ctx.twin):
                if victim is not None and victim.proc is not None:
                    victim.proc.interrupt(reason)

    def _on_gcs_lost(self, node_id: str) -> None:
        """Unreplicated head death: the GCS state — ownership table, detector
        views, blacklist — died with the node and nothing holds a copy.
        Every open task fails and driver handles surface the loss."""
        self._record("gcs_lost", node=node_id)
        if self.health is not None:
            self.health.pause()
        self.ownership._entries.clear()
        self._fail_open_tasks(
            f"control plane lost: GCS on {node_id} died with no standby"
        )

    def _complete_failover(
        self, winner: str, new_epoch: int, log: List
    ) -> Generator:
        """The election winner becomes the head: rebuild control state from
        its WAL replica, adopt leadership under the bumped fencing epoch,
        re-point the control endpoints, re-register the driver and every
        live raylet, reconcile, restart detection, release parked work."""
        ha = self.ha
        assert ha is not None
        self._rebuild_control_state(log)
        # adopt *before* re-registration so everything the raylets report
        # lands in the new leader's WAL under the new epoch
        ha.adopt(winner, new_epoch, log)
        self.gcs_endpoint = self.cluster.node(winner).attachment_endpoint
        self.scheduler.endpoint = self.gcs_endpoint
        self._record(
            "ha_leader_elected", epoch=new_epoch, node=winner, wal_records=len(log)
        )
        if self.probe is not None:
            self.probe.ha_leader(new_epoch, winner)
        self._reregister_driver()
        yield from self._reregister_raylets(self.gcs_endpoint, new_epoch)
        self._reconcile_after_failover()
        if self.health is not None:
            # the detector restarts seeded with the rebuilt dead-node view —
            # the dead old head gets no grace period it has not earned
            self.health.reset_for_failover(set(self._dead_nodes))
        ha.on_failover_complete()
        self._record("ha_failover_complete", epoch=new_epoch, node=winner)
        self._resume_parked()

    def _rebuild_control_state(self, log: List) -> None:
        """Replay a WAL replica into fresh control-plane state.

        Records carry full snapshots, so replay is a last-write-wins forward
        pass.  Death records rebuild the *views* (dead sets, blacklist,
        breakers) without re-running their side effects — the ownership
        snapshots in the same log already reflect every drop the old leader
        performed, and interrupts/actor restores happened on the old watch."""
        self.ownership._entries.clear()
        self._dead_nodes.clear()
        self._dead_devices.clear()
        self._dead_blades.clear()
        self.scheduler.clear_blacklist()
        breaker_final: Dict[str, str] = {}
        for rec in log:
            d = rec.get()
            if rec.kind == "own":
                self._probe_site("gcs")
                self.ownership.restore(
                    d["object"],
                    d["owner"],
                    d["task"],
                    ValueState[d["state"]],
                    d["nbytes"],
                    d["locations"],
                    d["device"],
                )
            elif rec.kind == "own_drop":
                self.ownership.remove(d["object"])
            elif rec.kind == "node_dead":
                self._dead_nodes.add(d["node"])
                for raylet in self._raylets_by_node.get(d["node"], []):
                    for dev in raylet.devices:
                        self.scheduler.blacklist(dev.device_id)
            elif rec.kind == "node_alive":
                self._dead_nodes.discard(d["node"])
                for raylet in self._raylets_by_node.get(d["node"], []):
                    for dev in raylet.devices:
                        self.scheduler.unblacklist(dev.device_id)
            elif rec.kind == "device_dead":
                self._dead_devices.add(d["device"])
                self.scheduler.blacklist(d["device"])
                breaker_final[d["device"]] = "OPEN"
            elif rec.kind == "device_alive":
                self._dead_devices.discard(d["device"])
                self.scheduler.unblacklist(d["device"])
                breaker_final.pop(d["device"], None)
            elif rec.kind == "blade_dead":
                self._dead_blades.add(d["node"])
            elif rec.kind == "blade_alive":
                self._dead_blades.discard(d["node"])
            elif rec.kind == "breaker":
                breaker_final[d["device"]] = d["state"]
            # "lease" records are informational (fencing audit); no replay
        if self._breakers is not None:
            for device_id in sorted(breaker_final):
                if breaker_final[device_id] == "OPEN":
                    self._breakers.breaker(device_id).force_open(self.sim.now)

    def _reregister_driver(self) -> None:
        """The driver re-asserts every ref it still holds: objects created in
        the un-synced window before the kill never reached a replica, so
        their entries come back as PENDING and the normal machinery — retry,
        re-sent done-reports, lineage — re-materializes them."""
        for oid in sorted(self._ctx_of_object):
            ctx = self._ctx_of_object[oid]
            if ctx.state in (TaskState.FAILED, TaskState.CANCELLED):
                continue
            if self.ownership.contains(oid):
                continue
            self._probe_site("gcs")
            self.ownership.restore(
                oid, DRIVER, ctx.spec.task_id, ValueState.PENDING, 0, (), None
            )

    def _reregister_raylets(self, winner_ep: str, epoch: int) -> Generator:
        """Every live raylet re-registers with the new leader: it learns the
        fencing epoch, re-sends the done-reports the dead head never acked
        (commits the WAL missed), and reports its store inventory so every
        surviving copy re-enters the directory."""
        for raylet in sorted(
            (r for r in self._raylets if r.alive), key=lambda r: r.endpoint
        ):
            delivered = yield self.net.rpc(
                winner_ep, raylet.endpoint, label="ha-register"
            )
            if delivered is False or not raylet.alive:
                continue
            raylet.observe_epoch(epoch)
            yield raylet.control()
            for report in raylet.unacked_reports():
                oid, node_id, nbytes, device_id, task_id = report
                if not self.ownership.contains(oid):
                    self._probe_site("gcs")
                    self.ownership.restore(
                        oid, DRIVER, task_id, ValueState.PENDING, 0, (), None
                    )
                store = self._store_of_device.get(device_id)
                if store is not None and store.contains(oid):
                    self._probe_site("gcs")
                    self.ownership.mark_ready(oid, node_id, nbytes, device_id)
                raylet.ack_report(report)
            for dev_id in sorted(raylet.stores):
                device = self._device_by_id.get(dev_id)
                if device is None or not device.alive:
                    continue
                store = raylet.stores[dev_id]
                for oid, stored in list(store._objects.items()):
                    if not self.ownership.contains(oid):
                        continue  # freed, or a put the driver no longer holds
                    entry = self.ownership.entry(oid)
                    if entry.state in (ValueState.READY, ValueState.LOST):
                        self._probe_site("gcs")
                        self.ownership.add_location(oid, device.node_id)
                    elif entry.state == ValueState.PENDING:
                        ctx = self._ctx_of_object.get(oid)
                        if ctx is not None and ctx.state == TaskState.FINISHED:
                            self._probe_site("gcs")
                            self.ownership.mark_ready(
                                oid, device.node_id, stored.nbytes, dev_id
                            )

    def _reconcile_after_failover(self) -> None:
        """PENDING entries whose producing task FINISHED but whose bytes
        survive on no live device: the commit landed and then died with its
        only copy.  Mark them LOST so lineage replay (or a driver ``get``)
        rebuilds them instead of waiting on a task that will never re-run."""
        lost: List[str] = []
        for entry in sorted(self.ownership.objects(), key=lambda e: e.object_id):
            if entry.state is ValueState.LOST:
                lost.append(entry.object_id)
                continue
            if entry.state is not ValueState.PENDING:
                continue
            ctx = self._ctx_of_object.get(entry.object_id)
            if ctx is None or ctx.state is not TaskState.FINISHED:
                continue
            self._probe_site("gcs")
            self.ownership.restore(
                entry.object_id,
                entry.owner,
                entry.task_id,
                ValueState.LOST,
                entry.nbytes,
                (),
                None,
            )
            lost.append(entry.object_id)
        # a consumer parked in backoff (or about to requeue) would otherwise
        # wait forever on an object no task will ever produce again
        self._recover_lost_dependencies(lost)

    def _resume_parked(self) -> None:
        """Dispatches frozen during the leaderless window go back through
        routing (the new leader's scheduler, blacklist, and epoch)."""
        assert self.ha is not None
        parked, self.ha.parked = self.ha.parked, []
        for ctx in parked:
            if ctx.state is not TaskState.PENDING:
                continue
            try:
                self._route(ctx)
            except PlacementError as exc:
                self._retry_or_fail(ctx, cause=str(exc))

    # -- device-granular failure domains -------------------------------------
    #
    # Disaggregation changes the failure unit (§2.3, fault tolerance): a GPU,
    # a DPU, or a memory blade can die while everything around it lives.  The
    # control plane reacts per *domain* — blacklist one device, adopt one
    # card's stores, recover one blade's spilled objects — instead of
    # declaring whole nodes dead.

    def fail_device(self, device_id: str) -> List[str]:
        """Kill one device *and* tell the control plane (driver omniscience).

        Chaos injections instead do only the physical half and let heartbeat
        payloads / probe triage discover the death the honest way.  Returns
        the object ids that became LOST.
        """
        device = self._device_by_id[device_id]
        device.fail()
        store = self._store_of_device.get(device_id)
        if store is not None:
            store.clear()  # the memory died with the silicon
        for raylet in self._raylets_by_node.get(device.node_id, []):
            if raylet.host_device is device and raylet.alive:
                if all(d is device for d in raylet.devices):
                    raylet.fail()  # its only store just went with it anyway
                else:
                    raylet.fail_control()  # companion memory survives
        self._interrupt_tasks_on_device(device_id, "device failed")
        lost = self._mark_device_dead(device_id, cause="killed by driver")
        self._adopt_orphans(device.node_id, cause="killed by driver")
        return lost

    def restore_device(self, device_id: str) -> None:
        device = self._device_by_id[device_id]
        device.restore()
        for raylet in self._raylets_by_node.get(device.node_id, []):
            if raylet.host_device is device:
                raylet.restart()
        if self.health is None:
            self._undo_takeover(device.node_id)
            self._mark_device_alive(device_id)
        # with heartbeats the device must earn its way back: the next beat's
        # status payload (or the revived raylet's first beat) clears it

    def _mark_device_dead(self, device_id: str, cause: str) -> List[str]:
        """Control-plane reaction to one device's death: blacklist exactly
        that device, sever dangling DeviceHandles, mark objects whose only
        copy sat in its memory LOST, re-home actors, and proactively recover
        what open tasks still need.  Idempotent per death."""
        if device_id in self._dead_devices:
            return []
        device = self._device_by_id.get(device_id)
        if device is None:
            return []
        self._dead_devices.add(device_id)
        if self._breakers is not None:
            self._breakers.breaker(device_id).force_open(self.sim.now)
        self.scheduler.blacklist(device_id)
        self._probe_site("gcs")  # death declarations are the detector's act
        self.ownership.drop_device(device_id)
        node_id = device.node_id
        lost: List[str] = []
        for entry in self.ownership.objects():
            if (
                node_id in entry.locations
                and entry.state == ValueState.READY
                and not self._node_has_copy(node_id, entry.object_id)
            ):
                entry.locations.discard(node_id)
                if not entry.locations:
                    entry.state = ValueState.LOST
                    lost.append(entry.object_id)
                    if self.probe is not None:
                        # mirrors the in-place transition above (this
                        # path bypasses the table's mutators)
                        self.probe.ownership_op(
                            "drop_location", entry.object_id, "READY", "LOST", 0
                        )
        self._record(
            "device_dead",
            device=device_id,
            node=node_id,
            cause=cause,
            objects_lost=len(lost),
        )
        if self.ha is not None:
            self.ha.append("device_dead", device=device_id)
        self.telemetry.registry.counter(
            "skadi_device_failures_total",
            "device deaths the control plane acted on, by device kind",
            kind=device.kind.value,
        ).inc()
        for actor_id in sorted(self._actor_device):
            if (
                actor_id not in self._dead_actors
                and self._actor_device[actor_id] == device_id
            ):
                self._restore_actor(actor_id, cause=f"device {device_id} failed")
        self._interrupt_tasks_on_device(device_id, cause)
        self._recover_lost_dependencies(lost)
        return lost

    def _mark_device_alive(self, device_id: str) -> None:
        if device_id not in self._dead_devices:
            return
        self._dead_devices.discard(device_id)
        if self._breakers is not None:
            # the device earned its way back: probe before trusting it
            self._breakers.breaker(device_id).on_recovered()
        self.scheduler.unblacklist(device_id)
        self._record("device_alive", device=device_id)
        if self.ha is not None:
            self.ha.append("device_alive", device=device_id)

    def _on_device_report(self, device_id: str, alive: bool) -> None:
        """A heartbeat's device-status payload: a live raylet telling the GCS
        how its managed silicon is doing."""
        if alive:
            self._mark_device_alive(device_id)
        else:
            self._mark_device_dead(device_id, cause="reported by raylet")

    def _on_triage_verdict(self, node_id: str, dead, live) -> None:
        """The failure detector probed a silent node's devices: act on the
        dead domains, and hand orphaned live devices to a takeover raylet."""
        for device in dead:
            self._mark_device_dead(device.device_id, cause="failed probe")
        if live:
            self._adopt_orphans(node_id, cause="raylet silent")

    def _on_endpoint_alive(self, raylet: Raylet) -> None:
        """A suspected raylet endpoint beat again (restarted DPU, healed
        link): the revived daemon reclaims anything the head adopted."""
        self._undo_takeover(raylet.node_id)

    def _mark_dpu_dead(self, node_id: str, cause: str) -> List[str]:
        """Omniscient entry point for a DPU death (Gen-1: the card's raylet
        dies, companion memory survives).  Gen-2 cards have no raylet on the
        DPU, so there is nothing to adopt — the paper's single-point-of-
        control contrast."""
        return self._adopt_orphans(node_id, cause=cause)

    def _on_dpu_alive(self, node_id: str) -> None:
        self._undo_takeover(node_id)

    def _adopt_orphans(self, node_id: str, cause: str) -> List[str]:
        """Devices whose control daemon died while their silicon lives get
        adopted by the head node's raylet: stores are handed over intact,
        and every control action now crosses the fabric and serializes on
        the head CPU — degraded mode, not an outage."""
        head_raylet = self._raylets_by_node[self._head_node().node_id][0]
        adopted = self._takeovers.setdefault(node_id, [])
        new: List[str] = []
        for raylet in self._raylets_by_node.get(node_id, []):
            if raylet.alive or raylet is head_raylet:
                continue
            for dev in list(raylet.devices):
                if (
                    not dev.alive
                    or dev.device_id in self._dead_devices
                    or dev.device_id in adopted
                    or dev.device_id not in raylet.stores
                ):
                    continue
                head_raylet.stores[dev.device_id] = raylet.stores[dev.device_id]
                head_raylet.devices.append(dev)
                self._raylet_of_device[dev.device_id] = head_raylet
                self._adopted_from[dev.device_id] = raylet
                adopted.append(dev.device_id)
                new.append(dev.device_id)
            if new:
                # in-flight attempts lost their control daemon; retries will
                # re-dispatch through the takeover raylet
                self._interrupt_tasks_on_raylet(raylet, f"raylet takeover: {cause}")
        if not adopted:
            self._takeovers.pop(node_id, None)
        if new:
            self._record(
                "raylet_takeover",
                node=node_id,
                devices=sorted(new),
                by=head_raylet.raylet_id,
                cause=cause,
            )
            self.telemetry.registry.counter(
                "skadi_raylet_takeovers_total",
                "orphaned-device adoptions by a surviving raylet",
            ).inc()
        return new

    def _undo_takeover(self, node_id: str) -> None:
        """The original control daemon is back: hand its devices back."""
        adopted = self._takeovers.pop(node_id, None)
        if not adopted:
            return
        head_raylet = self._raylets_by_node[self._head_node().node_id][0]
        for dev_id in adopted:
            original = self._adopted_from.pop(dev_id, None)
            head_raylet.stores.pop(dev_id, None)
            head_raylet.devices = [
                d for d in head_raylet.devices if d.device_id != dev_id
            ]
            if original is not None:
                self._raylet_of_device[dev_id] = original
        # attempts mid-flight through the takeover raylet must re-dispatch
        for ctx in list(self._ctxs.values()):
            for victim in (ctx, ctx.twin):
                if (
                    victim is not None
                    and victim.raylet is head_raylet
                    and victim.device is not None
                    and victim.device.device_id in adopted
                    and victim.state
                    in (TaskState.SCHEDULED, TaskState.RESOLVING, TaskState.RUNNING)
                    and victim.proc is not None
                ):
                    victim.proc.interrupt("control handed back to revived raylet")
        self._record("raylet_takeover_end", node=node_id, devices=sorted(adopted))

    def _mark_blade_dead(self, node_id: str, cause: str) -> List[str]:
        """A memory blade died: every spilled object whose only copy sat
        there is LOST and must come back via lineage or the reliable cache
        (there is no compute to blacklist — blades only store)."""
        if node_id in self._dead_blades:
            return []
        self._dead_blades.add(node_id)
        self._probe_site("gcs")  # death declarations are the detector's act
        lost = self.ownership.drop_node(node_id)
        self._record("blade_dead", node=node_id, cause=cause, objects_lost=len(lost))
        if self.ha is not None:
            self.ha.append("blade_dead", node=node_id)
        self.telemetry.registry.counter(
            "skadi_blade_failures_total",
            "memory-blade deaths the control plane acted on",
        ).inc()
        self._recover_lost_dependencies(lost)
        return lost

    def _on_blade_alive(self, node_id: str) -> None:
        if node_id not in self._dead_blades:
            return
        self._dead_blades.discard(node_id)
        self._record("blade_alive", node=node_id)
        if self.ha is not None:
            self.ha.append("blade_alive", node=node_id)

    def _interrupt_tasks_on_device(self, device_id: str, cause: str) -> None:
        """In-flight attempts placed on one device resubmit themselves."""
        for ctx in list(self._ctxs.values()):
            for victim in (ctx, ctx.twin):
                if (
                    victim is not None
                    and victim.device is not None
                    and victim.device.device_id == device_id
                    and victim.state
                    in (TaskState.SCHEDULED, TaskState.RESOLVING, TaskState.RUNNING)
                    and victim.proc is not None
                ):
                    victim.proc.interrupt(f"device {device_id}: {cause}")

    def _interrupt_tasks_on_raylet(self, raylet: Raylet, cause: str) -> None:
        for ctx in list(self._ctxs.values()):
            for victim in (ctx, ctx.twin):
                if (
                    victim is not None
                    and victim.raylet is raylet
                    and victim.state
                    in (TaskState.SCHEDULED, TaskState.RESOLVING, TaskState.RUNNING)
                    and victim.proc is not None
                ):
                    victim.proc.interrupt(cause)

    def _recover_lost_dependencies(self, lost: List[str]) -> None:
        """Proactive recovery: a lost object some open task still depends on
        is recovered now, instead of waiting for a driver ``get`` to notice."""
        if not lost:
            return
        lost_set = set(lost)
        needed = set()
        for ctx in self._ctxs.values():
            if ctx.state in (TaskState.FINISHED, TaskState.FAILED, TaskState.CANCELLED):
                continue
            for dep in ctx.spec.dependencies:
                if dep.object_id in lost_set:
                    needed.add(dep.object_id)
        for oid in sorted(needed):
            self._record("proactive_recovery", object=oid)
            self._recover(ObjectRef(oid), proactive=True)

    def _count_recovery(self, source: str, objects: int, nbytes: int) -> None:
        reg = self.telemetry.registry
        reg.counter(
            "skadi_recovered_objects_total",
            "objects recovered after a failure, by mechanism",
            source=source,
        ).inc(objects)
        reg.counter(
            "skadi_recovered_bytes_total",
            "bytes recovered after a failure, by mechanism "
            "(lineage counts recomputed bytes, caches count re-fetched bytes)",
            source=source,
        ).inc(nbytes)

    def _recover(self, ref: ObjectRef, proactive: bool = False) -> None:
        """Bring a LOST object back: checkpoint, reliable cache, or lineage."""
        oid = ref.object_id
        if not proactive and self._restore_from_checkpoint(oid):
            self._record(
                "object_recovered",
                object=oid,
                source="checkpoint",
                nbytes=self.ownership.entry(oid).nbytes,
            )
            self._count_recovery("checkpoint", 1, self.ownership.entry(oid).nbytes)
            return
        # restore only the checkpoint *frontier* the replay actually needs:
        # walking producers from the target, stop at the first checkpointed
        # (or still-ready) ancestor on each path.  (Proactive recovery runs
        # inside a simulation process, where the blocking durable reads of
        # the checkpoint path cannot be issued; cache and lineage can.)
        if not proactive:
            self._restore_checkpoint_frontier(oid, set())
        if self.reliable_cache is not None and self.reliable_cache.contains(oid):
            try:
                value, cost = self.reliable_cache.get(oid)
            except ObjectLostError:
                value = None
            else:
                entry = self.ownership.entry(oid)
                head = self._head_node()
                raylet = self._raylets_by_node[head.node_id][0]
                store = raylet.store_of(raylet.host_device.device_id)
                if not store.contains(oid):
                    store.put(oid, value, entry.nbytes or estimate_nbytes(value))
                self._probe_site("gcs")  # recovery is a control-plane act
                self.ownership.mark_ready(
                    oid, head.node_id, entry.nbytes, raylet.host_device.device_id
                )
                if self.probe_edges is not None:
                    self.probe_edges.object_ready("gcs", oid)
                # charge the reconstruction time in virtual time
                self.sim.schedule(cost, lambda: None)
                self._record(
                    "object_recovered",
                    object=oid,
                    source="reliable_cache",
                    nbytes=entry.nbytes,
                )
                self._count_recovery("reliable_cache", 1, entry.nbytes)
                self._on_object_ready(oid)
                return
        plan = self.lineage.plan_recovery(oid, self.ownership)
        self.lineage.replays += len(plan)
        if plan:
            self._record("lineage_replay", target=oid, tasks=len(plan))
            target_entry = self.ownership.entry(oid)
            recomputed = sum(
                self.ownership.entry(out).nbytes
                for spec in plan
                for out in self.lineage.outputs_of(spec.task_id)
                if self.ownership.contains(out)
            )
            self._record(
                "object_recovered",
                object=oid,
                source="lineage",
                nbytes=target_entry.nbytes,
                recomputed_bytes=recomputed,
            )
            self._count_recovery("lineage", 1, recomputed)
        for spec in plan:
            old_ids = self.lineage.outputs_of(spec.task_id)
            if self.probe is not None:
                # reincarnation: later attempts of this task get distinct
                # sites and lease keys, so a replay is not confused with
                # the task's first life
                self.probe.replay(spec.task_id)
            for out_oid in old_ids:
                entry = self.ownership.entry(out_oid)
                if self.probe is not None:
                    self.probe.site = "gcs"  # recovery is a control-plane act
                    self.probe.ownership_op(
                        "replay_reset", out_oid, entry.state.name, "PENDING", 0
                    )
                entry.state = ValueState.PENDING
                entry.locations.clear()
            ctx = _TaskCtx(spec, ObjectRef(old_ids[0], task_id=spec.task_id), Signal(self.sim))
            ctx.timeline.submitted = self.sim.now
            self._open_task_span(ctx, replayed=True)
            self._m_replays.inc()
            self._ctxs[spec.task_id] = ctx
            self._ctx_of_object[old_ids[0]] = ctx
            self._open_tasks += 1
            try:
                self._route(ctx)
            except PlacementError as exc:
                # mid-chaos the cluster may have nowhere to run the replay
                # right now; back off and try again
                self._retry_or_fail(ctx, cause=str(exc))

    # -- introspection ---------------------------------------------------------------------

    @property
    def control_messages(self) -> int:
        return self.net.stats.messages

    @property
    def bytes_moved(self) -> int:
        return self.net.stats.bytes_moved

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation (drains everything unless ``until``)."""
        return self.sim.run(until=until)

    def timeline_of(self, ref: ObjectRef) -> TaskTimeline:
        ctx = self._ctx_of_object.get(ref.object_id)
        if ctx is None:
            raise KeyError(f"no task produced {ref.object_id!r}")
        return ctx.timeline

    # -- telemetry introspection ---------------------------------------------

    def metrics_summary(self) -> Dict[str, float]:
        """Flat ``{name{labels}: value}`` snapshot of every instrument
        (histograms report their observation count)."""
        out: Dict[str, float] = {}
        for family in self.telemetry.registry.families():
            for inst in family.instruments():
                labels = inst.labels_dict
                suffix = (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                out[family.name + suffix] = float(inst.value)
        return out

    def span_of(self, ref: ObjectRef) -> Optional[Span]:
        """The task span that produced ``ref`` (None for driver puts)."""
        ctx = self._ctx_of_object.get(ref.object_id)
        return None if ctx is None else ctx.span

    def critical_path(self, ref: ObjectRef) -> CriticalPathResult:
        """Latency attribution for the chain ending at ``ref``'s producer."""
        span = self.span_of(ref)
        if span is None:
            raise KeyError(f"no traced task produced {ref.object_id!r}")
        return extract_critical_path(self.telemetry.tracer.finished_spans(), span)

    def telemetry_report(
        self, critical_path: Optional[CriticalPathResult] = None
    ):
        """Paper-style summary tables over the metrics plane."""
        from ..telemetry.report import TelemetryReport  # sits above this layer

        return TelemetryReport(self, critical_path)


def make_reliable_cache(cluster: Cluster, redundancy) -> CachingLayer:
    """A CachingLayer spanning the cluster's nodes, with network-true costs."""
    node_ids = [n.node_id for n in cluster.nodes.values()]

    def transfer_time(src: str, dst: str, nbytes: int) -> float:
        if src == dst:
            return 0.0
        src_ep = cluster.node(src).dominant_device.device_id
        dst_ep = cluster.node(dst).dominant_device.device_id
        return cluster.network.transfer_time_estimate(src_ep, dst_ep, nbytes)

    return CachingLayer(
        [CacheNode(nid) for nid in node_ids],
        redundancy=redundancy,
        transfer_time=transfer_time,
    )
