"""Deterministic id generation for tasks, objects, actors, and workers.

Ids are readable strings with a per-runtime monotonically increasing
counter; determinism matters because the simulator's event order (and thus
every benchmark number) must be reproducible run-to-run.
"""

from __future__ import annotations

import itertools
from typing import Iterator

__all__ = ["IdGenerator"]


class IdGenerator:
    """Per-runtime id factory (never share across runtimes)."""

    def __init__(self) -> None:
        self._counters: dict[str, Iterator[int]] = {}

    def next(self, kind: str) -> str:
        counter = self._counters.get(kind)
        if counter is None:
            counter = itertools.count()
            self._counters[kind] = counter
        return f"{kind}-{next(counter):06d}"

    def task_id(self) -> str:
        return self.next("task")

    def object_id(self) -> str:
        return self.next("obj")

    def actor_id(self) -> str:
        return self.next("actor")

    def worker_id(self) -> str:
        return self.next("worker")
