"""Heartbeat-based failure detection over the simulated network.

Before this module existed, the only failure path was an omniscient driver
calling ``fail_node()`` — the runtime learned of a death by fiat, for free,
instantly.  Real control planes pay for that knowledge: raylets emit
periodic heartbeats, the GCS counts silent intervals, and recovery starts
only after K missed beats — which is exactly why detection latency shows up
in recovery tail latency (Ray's design, and the knob the chaos soak sweeps).

Mechanics:

* one **sender** process per compute node sends a heartbeat control message
  from the node's raylet endpoint to the GCS endpoint every ``interval``
  virtual seconds.  Heartbeats travel the simulated network: they pay hop
  latency, count in ``NetworkStats.messages``, and can be dropped by chaos
  (loss or partition).  A crashed raylet stops beating — there is no
  side-channel.
* one **monitor** process on the GCS marks a node *suspected* after
  ``miss_threshold`` intervals without an arrival and tells the runtime,
  which blacklists the node, drops its object locations, interrupts its
  in-flight tasks, and reconstructs its actors.
* a beat arriving from a suspected node (a healed partition, a restarted
  raylet) clears the suspicion and un-blacklists the node.

The loops run only while the runtime has open tasks (otherwise they would
keep the event queue non-empty forever and ``sim.run()`` would never
drain); a stall guard stops the monitor if nothing has made progress for a
long time so an unrecoverable cluster still surfaces its error instead of
spinning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import ServerlessRuntime

__all__ = ["HeartbeatMonitor"]

# monitor ticks without any task progress before the detector parks itself
STALL_TICKS = 200


class HeartbeatMonitor:
    """The GCS-side failure detector plus per-node heartbeat senders."""

    def __init__(
        self,
        runtime: "ServerlessRuntime",
        interval: float,
        miss_threshold: int = 3,
    ):
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0, got {interval}")
        if miss_threshold < 1:
            raise ValueError(f"miss threshold must be >= 1, got {miss_threshold}")
        self.runtime = runtime
        self.sim = runtime.sim
        self.net = runtime.net
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.last_seen: Dict[str, float] = {}
        self.suspected: Set[str] = set()
        self.beats_received = 0
        self.beats_sent = 0
        self._active = False
        self._epoch = 0  # loops from an earlier activation exit on mismatch

    # -- lifecycle -----------------------------------------------------------

    def monitored_nodes(self) -> List[str]:
        return sorted(
            node_id
            for node_id, raylets in self.runtime._raylets_by_node.items()
            if raylets
        )

    def ensure_running(self) -> None:
        """Start (or restart) detection; called whenever work is submitted."""
        if self._active:
            return
        self._active = True
        self._epoch += 1
        epoch = self._epoch
        now = self.sim.now
        for node_id in self.monitored_nodes():
            # fresh grace period for healthy nodes so an idle gap between
            # jobs is not mistaken for silence; suspected nodes must earn
            # their way back with a real heartbeat
            if node_id not in self.suspected:
                self.last_seen[node_id] = now
            self.sim.process(self._sender_loop(node_id, epoch), name=f"hb:{node_id}")
        self.sim.process(self._monitor_loop(epoch), name="hb:monitor")

    # -- the wire protocol ---------------------------------------------------

    def _sender_loop(self, node_id: str, epoch: int) -> Generator:
        raylets = self.runtime._raylets_by_node[node_id]
        endpoint = raylets[0].endpoint
        while (
            self._active
            and self._epoch == epoch
            and self.runtime._has_pending_work()
        ):
            yield self.sim.timeout(self.interval)
            if not any(r.alive for r in raylets):
                continue  # a dead raylet does not beat; silence is the signal
            self.beats_sent += 1
            self._meter("skadi_heartbeats_sent_total", "heartbeats emitted per node", node_id)
            delivered = yield self.net.message(
                endpoint, self.runtime.gcs_endpoint, label="heartbeat"
            )
            if delivered:
                self._beat(node_id)

    def _meter(self, name: str, help_text: str, node_id: str) -> None:
        telemetry = getattr(self.runtime, "telemetry", None)
        if telemetry is not None:
            telemetry.registry.counter(name, help_text, node=node_id).inc()

    def _beat(self, node_id: str) -> None:
        self.beats_received += 1
        self._meter(
            "skadi_heartbeats_received_total", "heartbeats the GCS received per node", node_id
        )
        self.last_seen[node_id] = self.sim.now
        if node_id in self.suspected:
            self.suspected.discard(node_id)
            self.runtime._record("node_unsuspected", node=node_id)
            self.runtime._on_node_alive(node_id)

    def _monitor_loop(self, epoch: int) -> Generator:
        deadline = self.miss_threshold * self.interval
        stall = 0
        progress = self.runtime._progress_counter()
        while self._epoch == epoch and self.runtime._has_pending_work():
            yield self.sim.timeout(self.interval)
            now = self.sim.now
            for node_id in self.monitored_nodes():
                if node_id in self.suspected:
                    continue
                silent_for = now - self.last_seen.get(node_id, 0.0)
                if silent_for > deadline:
                    self.suspected.add(node_id)
                    self.runtime._record(
                        "node_suspected",
                        node=node_id,
                        silent_for=round(silent_for, 9),
                    )
                    self.runtime._mark_node_dead(node_id, cause="missed heartbeats")
            latest = self.runtime._progress_counter()
            stall = stall + 1 if latest == progress else 0
            progress = latest
            if stall >= STALL_TICKS:
                # nothing is moving: park the detector so the simulation can
                # drain and the driver sees the underlying error
                self.runtime._record("detector_stalled", ticks=stall)
                break
        if self._epoch == epoch:
            self._active = False
