"""Heartbeat-based failure detection over the simulated network.

Before this module existed, the only failure path was an omniscient driver
calling ``fail_node()`` — the runtime learned of a death by fiat, for free,
instantly.  Real control planes pay for that knowledge: raylets emit
periodic heartbeats, the GCS counts silent intervals, and recovery starts
only after K missed beats — which is exactly why detection latency shows up
in recovery tail latency (Ray's design, and the knob the chaos soak sweeps).

Disaggregation changes the failure *unit*, so detection is device-granular:

* one **sender** process per raylet sends a heartbeat control message from
  the raylet's endpoint to the GCS every ``interval`` virtual seconds.
  Heartbeats travel the simulated network: they pay hop latency, count in
  ``NetworkStats.messages``, and can be dropped by chaos (loss or
  partition).  A dead raylet stops beating — there is no side-channel.
  Each beat carries a **device-status payload**: the liveness of every
  device the raylet manages, sampled at send time.  That is how the GCS
  learns a GPU died under a still-healthy host without any extra probes.
* one **monitor** process on the GCS watches per-endpoint silence.  When an
  endpoint goes quiet for ``miss_threshold`` intervals the monitor does not
  jump to a whole-node verdict: it runs a **domain triage** — a probe RPC
  to each device behind the silent raylet(s).  Devices that answer are
  alive (a DPU died but its companion GPU survived); devices that do not
  are dead.  Only when *every* device of a fully-silent node fails its
  probe does the monitor fall back to the classic whole-node death.
* memory blades have no raylet and never beat; the GCS **probes** each
  blade on the heartbeat interval and declares it dead after
  ``miss_threshold`` consecutive failed probes (spilled objects must then
  be recovered from lineage or the reliable cache).
* a beat arriving from a suspected endpoint (a healed partition, a
  restarted raylet/DPU) clears the suspicion, un-blacklists the domain,
  and unwinds any control-plane takeover.

The loops run only while the runtime has open tasks (otherwise they would
keep the event queue non-empty forever and ``sim.run()`` would never
drain); a stall guard stops the monitor if nothing has made progress for a
long time so an unrecoverable cluster still surfaces its error instead of
spinning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set, Tuple

from ..cluster.hardware import Device
from ..cluster.node import NodeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .raylet import Raylet
    from .runtime import ServerlessRuntime

__all__ = ["HeartbeatMonitor"]

# monitor ticks without any task progress before the detector parks itself
STALL_TICKS = 200


class HeartbeatMonitor:
    """The GCS-side failure detector plus per-raylet heartbeat senders."""

    def __init__(
        self,
        runtime: "ServerlessRuntime",
        interval: float,
        miss_threshold: int = 3,
    ):
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0, got {interval}")
        if miss_threshold < 1:
            raise ValueError(f"miss threshold must be >= 1, got {miss_threshold}")
        self.runtime = runtime
        self.sim = runtime.sim
        self.net = runtime.net
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.last_seen: Dict[str, float] = {}  # node id -> newest beat from any endpoint
        self.last_seen_endpoint: Dict[str, float] = {}  # raylet endpoint -> newest beat
        self.suspected: Set[str] = set()  # node ids (whole-node or blade verdicts)
        self.suspected_endpoints: Set[str] = set()  # raylet endpoints under triage
        self.beats_received = 0
        self.beats_sent = 0
        self.probes_sent = 0
        self.analytic_beats = 0  # beats credited by fast-forward jumps
        self._active = False
        self._epoch = 0  # loops from an earlier activation exit on mismatch
        # idle fast-forward interplay: the detector's poll rounds are the
        # canonical deferrable ticks.  The listener applies the analytic
        # model of a skipped region; the guard (see _update_guard) demands
        # exact simulation while any suspicion is live.
        self._guard_armed = False
        self.sim.add_fast_forward_listener(self._on_fast_forward)

    # -- lifecycle -----------------------------------------------------------

    def monitored_nodes(self) -> List[str]:
        return sorted(
            node_id
            for node_id, raylets in self.runtime._raylets_by_node.items()
            if raylets
        )

    def blade_nodes(self) -> List[str]:
        return sorted(
            node.node_id
            for node in self.runtime.cluster.nodes.values()
            if node.kind == NodeKind.MEMORY_BLADE
        )

    def ensure_running(self) -> None:
        """Start (or restart) detection; called whenever work is submitted."""
        if self._active:
            return
        self._active = True
        self._epoch += 1
        epoch = self._epoch
        now = self.sim.now
        for node_id in self.monitored_nodes():
            # fresh grace period for healthy endpoints so an idle gap between
            # jobs is not mistaken for silence; suspected endpoints must earn
            # their way back with a real heartbeat
            if node_id not in self.suspected:
                self.last_seen[node_id] = now
            for raylet in self.runtime._raylets_by_node[node_id]:
                if raylet.endpoint not in self.suspected_endpoints:
                    self.last_seen_endpoint[raylet.endpoint] = now
                self.sim.process(
                    self._sender_loop(raylet, epoch), name=f"hb:{raylet.endpoint}"
                )
        for node_id in self.blade_nodes():
            self.sim.process(self._blade_probe_loop(node_id, epoch), name=f"probe:{node_id}")
        self.sim.process(self._monitor_loop(epoch), name="hb:monitor")

    def pause(self) -> None:
        """Stop every detection loop without declaring anything.

        Used by control-plane HA when the GCS host dies: a dead head cannot
        count silence.  Bumping the epoch makes every in-flight sender,
        probe, and monitor loop exit at its next tick; a later
        ``ensure_running()`` starts detection from scratch.
        """
        self._active = False
        self._epoch += 1

    def reset_for_failover(self, dead_nodes: Set[str]) -> None:
        """Fresh detector state on the election winner.

        Prior suspicion and grace timestamps belonged to the dead head and
        were never replicated (suspicion is soft state; only *verdicts*
        reach the WAL).  Nodes the replicated log already declared dead
        start out suspected so a revival heartbeat can clear them through
        the normal ``_beat`` path.
        """
        self.pause()
        self.last_seen.clear()
        self.last_seen_endpoint.clear()
        self.suspected = set(dead_nodes)
        self.suspected_endpoints = {
            raylet.endpoint
            for node_id in dead_nodes
            for raylet in self.runtime._raylets_by_node.get(node_id, [])
        }
        self._update_guard()
        self.ensure_running()

    # -- fast-forward interplay ----------------------------------------------

    def _update_guard(self) -> None:
        """Arm/disarm exact polling to track the suspicion sets.

        While anything is suspected, the poll rounds are load-bearing —
        counting silence and driving triage — so an armed poller blocks
        idle fast-forward until every suspicion resolves.  Must be called
        after every mutation of ``suspected``/``suspected_endpoints``.
        """
        want = bool(self.suspected or self.suspected_endpoints)
        if want and not self._guard_armed:
            self.sim.arm_poller()
            self._guard_armed = True
        elif not want and self._guard_armed:
            self.sim.disarm_poller()
            self._guard_armed = False

    def _on_fast_forward(self, old: float, new: float) -> None:
        """Analytic model of a skipped idle region.

        Only reachable while nothing is suspected (suspicion arms the
        poller, which blocks jumps).  On a clean control network — no
        partition, zero message loss — every alive raylet's beats in
        ``(old, new]`` would have been delivered, so ``last_seen`` is
        credited wholesale and the beat counters advance by the elided
        round count.  On a dirty network no credit is given: silence
        keeps counting from the last *real* beat, which errs toward
        re-detection, never away from it.
        """
        if not self._active:
            return
        if self.net.partitioned or self.net.message_loss_rate > 0.0:
            return
        rounds = int((new - old) / self.interval)
        for node_id, raylets in self.runtime._raylets_by_node.items():
            credited = False
            for raylet in raylets:
                if not raylet.alive or raylet.endpoint in self.suspected_endpoints:
                    continue
                credited = True
                self.last_seen_endpoint[raylet.endpoint] = new
                if rounds > 0:
                    self.beats_sent += rounds
                    self.beats_received += rounds
                    self.analytic_beats += rounds
                    self._meter(
                        "skadi_heartbeats_sent_total",
                        "heartbeats emitted per node",
                        node_id,
                        rounds,
                    )
                    self._meter(
                        "skadi_heartbeats_received_total",
                        "heartbeats the GCS received per node",
                        node_id,
                        rounds,
                    )
            if credited and node_id not in self.suspected:
                self.last_seen[node_id] = new

    # -- the wire protocol ---------------------------------------------------

    def _sender_loop(self, raylet: "Raylet", epoch: int) -> Generator:
        node_id = raylet.node_id
        while (
            self._active
            and self._epoch == epoch
            and self.runtime._has_pending_work()
        ):
            # a poller tick: idle fast-forward may defer it (the listener
            # above credits the elided beats); identical to timeout() with
            # fast-forward off
            yield self.sim.poll_timeout(self.interval)
            if not raylet.alive:
                continue  # a dead raylet does not beat; silence is the signal
            # device status is sampled when the beat leaves the node, not
            # when it arrives — the GCS sees the truth as of send time
            status = tuple(
                (dev.device_id, dev.alive) for dev in self._status_devices(raylet)
            )
            self.beats_sent += 1
            round_no = self.beats_sent
            probe = getattr(self.runtime, "probe_edges", None)
            if probe is not None:
                probe.hb_send(raylet.endpoint, round_no)
            self._meter("skadi_heartbeats_sent_total", "heartbeats emitted per node", node_id)
            delivered = yield self.net.message(
                raylet.endpoint, self.runtime.gcs_endpoint, label="heartbeat"
            )
            if delivered:
                self._beat(node_id, raylet, status, round_no)

    @staticmethod
    def _status_devices(raylet: "Raylet") -> List[Device]:
        devices = list(raylet.devices)
        if raylet.host_device not in devices:
            devices.append(raylet.host_device)  # a DPU reports on itself too
        return devices

    def _meter(
        self, name: str, help_text: str, node_id: str, amount: float = 1.0
    ) -> None:
        telemetry = getattr(self.runtime, "telemetry", None)
        if telemetry is not None:
            telemetry.registry.counter(name, help_text, node=node_id).inc(amount)

    def _beat(
        self,
        node_id: str,
        raylet: "Raylet",
        status: Tuple[Tuple[str, bool], ...] = (),
        round_no: Optional[int] = None,
    ) -> None:
        self.beats_received += 1
        probe = getattr(self.runtime, "probe_edges", None)
        if probe is not None and round_no is not None:
            probe.hb_recv(raylet.endpoint, round_no)
        self._meter(
            "skadi_heartbeats_received_total", "heartbeats the GCS received per node", node_id
        )
        now = self.sim.now
        self.last_seen[node_id] = now
        self.last_seen_endpoint[raylet.endpoint] = now
        if raylet.endpoint in self.suspected_endpoints:
            self.suspected_endpoints.discard(raylet.endpoint)
            self.runtime._record(
                "raylet_unsuspected", node=node_id, endpoint=raylet.endpoint
            )
            self.runtime._on_endpoint_alive(raylet)
        if node_id in self.suspected:
            self.suspected.discard(node_id)
            self.runtime._record("node_unsuspected", node=node_id)
            self.runtime._on_node_alive(node_id)
        self._update_guard()
        for device_id, alive in status:
            self.runtime._on_device_report(device_id, alive)

    def _probe(self, device: Device) -> Generator:
        """Probe a device endpoint through the network; returns liveness.

        Two one-way messages instead of an abstract RPC so the failure
        semantics are physical: the request must reach the device, and only
        a live device sends the acknowledgement back.
        """
        self.probes_sent += 1
        sent = yield self.net.message(
            self.runtime.gcs_endpoint, device.device_id, label="probe"
        )
        if not sent or not device.alive:
            return False
        acked = yield self.net.message(
            device.device_id, self.runtime.gcs_endpoint, label="probe-ack"
        )
        return bool(acked)

    def _monitor_loop(self, epoch: int) -> Generator:
        deadline = self.miss_threshold * self.interval
        stall = 0
        progress = self.runtime._progress_counter()
        while self._epoch == epoch and self.runtime._has_pending_work():
            yield self.sim.poll_timeout(self.interval)
            now = self.sim.now
            for node_id in self.monitored_nodes():
                raylets = self.runtime._raylets_by_node[node_id]

                def _silent(endpoint: str) -> bool:
                    return now - self.last_seen_endpoint.get(endpoint, 0.0) > deadline

                newly_silent = [
                    r
                    for r in raylets
                    if r.endpoint not in self.suspected_endpoints and _silent(r.endpoint)
                ]
                if not newly_silent:
                    continue
                all_silent = all(
                    r.endpoint in self.suspected_endpoints or _silent(r.endpoint)
                    for r in raylets
                )
                for raylet in newly_silent:
                    self.suspected_endpoints.add(raylet.endpoint)
                    # overload control: suspicion feeds the per-device
                    # circuit breakers (no-op when breakers are off)
                    self.runtime._on_endpoint_suspected(raylet)
                self._update_guard()
                if all_silent and node_id not in self.suspected:
                    self.suspected.add(node_id)
                    self.runtime._record(
                        "node_suspected",
                        node=node_id,
                        silent_for=round(
                            now - self.last_seen.get(node_id, 0.0), 9
                        ),
                    )
                    self.sim.process(
                        self._triage(node_id, list(raylets), True, epoch),
                        name=f"triage:{node_id}",
                    )
                else:
                    for raylet in newly_silent:
                        self.runtime._record(
                            "raylet_suspected", node=node_id, endpoint=raylet.endpoint
                        )
                    self.sim.process(
                        self._triage(node_id, newly_silent, False, epoch),
                        name=f"triage:{node_id}",
                    )
            latest = self.runtime._progress_counter()
            stall = stall + 1 if latest == progress else 0
            progress = latest
            if stall >= STALL_TICKS:
                # nothing is moving: park the detector so the simulation can
                # drain and the driver sees the underlying error
                self.runtime._record("detector_stalled", ticks=stall)
                break
        if self._epoch == epoch:
            self._active = False

    def _triage(
        self, node_id: str, raylets: List["Raylet"], whole_node: bool, epoch: int
    ) -> Generator:
        """Silence is ambiguous; probes resolve it to failure domains.

        A silent endpoint could be a crashed node, a dead DPU in front of a
        live GPU, or a dropped beat.  Probing every device behind the silent
        raylet(s) splits the node into live and dead domains, and only the
        dead ones are acted on.
        """
        devices: List[Device] = []
        seen: Set[str] = set()
        for raylet in raylets:
            for dev in self._status_devices(raylet):
                if dev.device_id not in seen:
                    seen.add(dev.device_id)
                    devices.append(dev)
        dead: List[Device] = []
        live: List[Device] = []
        for dev in sorted(devices, key=lambda d: d.device_id):
            ok = yield from self._probe(dev)
            (live if ok else dead).append(dev)
        if self._epoch != epoch:
            return
        self.runtime._record(
            "domain_triage",
            node=node_id,
            dead=sorted(d.device_id for d in dead),
            live=sorted(d.device_id for d in live),
            whole_node=whole_node,
        )
        if whole_node and not live:
            # every domain on the node is gone: the classic verdict
            self.runtime._mark_node_dead(node_id, cause="missed heartbeats")
            return
        if whole_node:
            # not a node death after all — the silent endpoints stay
            # suspected individually and are handled per-domain below
            self.suspected.discard(node_id)
            self._update_guard()
        self.runtime._on_triage_verdict(node_id, dead, live)

    def _blade_probe_loop(self, node_id: str, epoch: int) -> Generator:
        """Blades have no raylet to beat, so the GCS polls them directly."""
        blade = self.runtime.cluster.node(node_id).attachment_device
        misses = 0
        while (
            self._active
            and self._epoch == epoch
            and self.runtime._has_pending_work()
        ):
            yield self.sim.poll_timeout(self.interval)
            ok = yield from self._probe(blade)
            if self._epoch != epoch:
                return
            if ok:
                misses = 0
                if node_id in self.suspected:
                    self.suspected.discard(node_id)
                    self.runtime._record("blade_unsuspected", node=node_id)
                    self.runtime._on_blade_alive(node_id)
                    self._update_guard()
            else:
                misses += 1
                if misses >= self.miss_threshold and node_id not in self.suspected:
                    self.suspected.add(node_id)
                    self.runtime._record("blade_suspected", node=node_id, misses=misses)
                    self.runtime._mark_blade_dead(node_id, cause="missed probes")
                    self._update_guard()
