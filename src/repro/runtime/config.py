"""Runtime configuration knobs (the axes the benchmarks sweep)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["Generation", "ResolutionMode", "SchedulingPolicy", "RuntimeConfig"]


class Generation(enum.Enum):
    """Figure 3: where raylets run on physically-disaggregated cards."""

    GEN1 = 1  # DPU-centric: card's DPU raylet manages companion devices
    GEN2 = 2  # device-centric: device-specific raylet per heterogeneous device


class ResolutionMode(enum.Enum):
    """§2.3.2: how futures are resolved."""

    PULL = "pull"  # consumer pulls data from the producer on demand (Ray default)
    PUSH = "push"  # producer pushes data to consumers proactively (Gen-2 addition)


class SchedulingPolicy(enum.Enum):
    ROUND_ROBIN = "round_robin"  # CPU-centric baseline
    LOCALITY = "locality"  # data-centric: minimize estimated input movement
    LEAST_LOADED = "least_loaded"


@dataclass
class RuntimeConfig:
    generation: Generation = Generation.GEN2
    resolution: ResolutionMode = ResolutionMode.PUSH
    scheduling: SchedulingPolicy = SchedulingPolicy.LOCALITY
    # fault tolerance: lineage replay is always available; a reliable cache
    # (replication/EC) can be layered on via ``reliable_cache``.
    max_lineage_replays: int = 32
    # -- retry policy (transient failures: interrupts, lost leases, fetch
    # failures).  Backoff is exponential with deterministic per-attempt
    # jitter so reruns of a seeded chaos schedule are bit-identical.
    max_retries: int = 4
    retry_backoff_base: float = 1e-3  # seconds before the first retry
    retry_backoff_factor: float = 2.0
    retry_jitter: float = 0.25  # +- fraction of the backoff, hashed from (task, attempt)
    # execution watchdog: interrupt + retry a task attempt that has not
    # finished this long after dispatch (None disables)
    task_timeout: Optional[float] = None
    # speculative re-execution: launch a second copy of a task on another
    # device once an attempt exceeds ``speculation_factor`` x its expected
    # duration (None disables; actor tasks are never speculated)
    speculation_factor: Optional[float] = None
    # -- failure detection: raylets emit heartbeats over the simulated
    # network every ``heartbeat_interval`` virtual seconds (None disables,
    # leaving only the omniscient ``fail_node`` driver path); a node is
    # suspected dead after ``heartbeat_miss_threshold`` silent intervals.
    heartbeat_interval: Optional[float] = None
    heartbeat_miss_threshold: int = 3
    # -- actor reconstruction: checkpoint actor state into the reliable
    # cache every N completed method calls (0 disables).  A checkpointed
    # actor restarts on a surviving node when its home dies; methods are
    # at-least-once across a restart (calls after the last checkpoint
    # may re-execute), so recoverable actors should be idempotent.
    actor_checkpoint_every: int = 1
    # -- strict plans: statically sanitize every physical plan (cycles,
    # orphan tasks, placement hazards, memory over-subscription) before any
    # task is submitted, and refuse to launch plans with errors.
    strict_plans: bool = False
    # -- fast data plane.  Each mechanism has its own switch so the
    # benchmarks can A/B them independently; turning all four off recovers
    # the legacy store-and-forward data plane bit-for-bit.
    # chunked cut-through: pipeline bulk transfers across hops in fixed
    # chunks instead of serializing the whole object once per hop
    chunked_transfers: bool = True
    # concurrent consumers of one object on one device share a single
    # in-flight transfer instead of each paying the bytes
    fetch_dedup: bool = True
    # push-mode waves distribute one object to many consumers along a
    # spanning tree (serialize once per link) instead of per-consumer unicasts
    multicast_pushes: bool = True
    # locality placement prices per-link queueing + degradation into its
    # transfer-time estimates instead of assuming an idle fabric
    contention_aware_placement: bool = True
    # accounting
    track_task_timeline: bool = True

    def describe(self) -> str:
        return (
            f"gen{self.generation.value}/{self.resolution.value}/"
            f"{self.scheduling.value}"
        )
