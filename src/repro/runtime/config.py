"""Runtime configuration knobs (the axes the benchmarks sweep)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Generation", "ResolutionMode", "SchedulingPolicy", "RuntimeConfig"]


class Generation(enum.Enum):
    """Figure 3: where raylets run on physically-disaggregated cards."""

    GEN1 = 1  # DPU-centric: card's DPU raylet manages companion devices
    GEN2 = 2  # device-centric: device-specific raylet per heterogeneous device


class ResolutionMode(enum.Enum):
    """§2.3.2: how futures are resolved."""

    PULL = "pull"  # consumer pulls data from the producer on demand (Ray default)
    PUSH = "push"  # producer pushes data to consumers proactively (Gen-2 addition)


class SchedulingPolicy(enum.Enum):
    ROUND_ROBIN = "round_robin"  # CPU-centric baseline
    LOCALITY = "locality"  # data-centric: minimize estimated input movement
    LEAST_LOADED = "least_loaded"


@dataclass
class RuntimeConfig:
    generation: Generation = Generation.GEN2
    resolution: ResolutionMode = ResolutionMode.PUSH
    scheduling: SchedulingPolicy = SchedulingPolicy.LOCALITY
    # fault tolerance: lineage replay is always available; a reliable cache
    # (replication/EC) can be layered on via ``reliable_cache``.
    max_lineage_replays: int = 32
    # accounting
    track_task_timeline: bool = True

    def describe(self) -> str:
        return (
            f"gen{self.generation.value}/{self.resolution.value}/"
            f"{self.scheduling.value}"
        )
