"""Runtime configuration knobs (the axes the benchmarks sweep)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Generation",
    "ResolutionMode",
    "SchedulingPolicy",
    "AdmissionPolicy",
    "RuntimeConfig",
]


class Generation(enum.Enum):
    """Figure 3: where raylets run on physically-disaggregated cards."""

    GEN1 = 1  # DPU-centric: card's DPU raylet manages companion devices
    GEN2 = 2  # device-centric: device-specific raylet per heterogeneous device


class ResolutionMode(enum.Enum):
    """§2.3.2: how futures are resolved."""

    PULL = "pull"  # consumer pulls data from the producer on demand (Ray default)
    PUSH = "push"  # producer pushes data to consumers proactively (Gen-2 addition)


class SchedulingPolicy(enum.Enum):
    ROUND_ROBIN = "round_robin"  # CPU-centric baseline
    LOCALITY = "locality"  # data-centric: minimize estimated input movement
    LEAST_LOADED = "least_loaded"


class AdmissionPolicy(enum.Enum):
    """What a full scheduler-level admission queue does with a new task."""

    REJECT = "reject"  # raise AdmissionRejectedError to the caller
    SHED_LOWEST_PRIORITY = "shed_lowest_priority"  # evict a lower-priority pending task
    QUEUE_WITH_DEADLINE = "queue_with_deadline"  # park in a bounded overflow queue


@dataclass
class RuntimeConfig:
    generation: Generation = Generation.GEN2
    resolution: ResolutionMode = ResolutionMode.PUSH
    scheduling: SchedulingPolicy = SchedulingPolicy.LOCALITY
    # fault tolerance: lineage replay is always available; a reliable cache
    # (replication/EC) can be layered on via ``reliable_cache``.
    max_lineage_replays: int = 32
    # -- retry policy (transient failures: interrupts, lost leases, fetch
    # failures).  Backoff is exponential with deterministic per-attempt
    # jitter so reruns of a seeded chaos schedule are bit-identical.
    max_retries: int = 4
    retry_backoff_base: float = 1e-3  # seconds before the first retry
    retry_backoff_factor: float = 2.0
    # jitter fraction of the backoff.  The per-attempt jitter is *hashed*,
    # not drawn: ``frac = int(md5(f"{task_id}:{retries}")[:8], 16) / 0xFFFFFFFF``
    # and ``delay = base * factor**(retries-1) * (1 + retry_jitter * frac)``
    # (see ``overload.backoff_jitter_fraction``).  md5 is stable across
    # processes, platforms and Python versions, so seeded chaos replays are
    # bit-identical; tests/test_overload.py pins exact values of the
    # sequence to keep refactors honest.
    retry_jitter: float = 0.25
    # execution watchdog: interrupt + retry a task attempt that has not
    # finished this long after dispatch (None disables)
    task_timeout: Optional[float] = None
    # speculative re-execution: launch a second copy of a task on another
    # device once an attempt exceeds ``speculation_factor`` x its expected
    # duration (None disables; actor tasks are never speculated)
    speculation_factor: Optional[float] = None
    # -- failure detection: raylets emit heartbeats over the simulated
    # network every ``heartbeat_interval`` virtual seconds (None disables,
    # leaving only the omniscient ``fail_node`` driver path); a node is
    # suspected dead after ``heartbeat_miss_threshold`` silent intervals.
    heartbeat_interval: Optional[float] = None
    heartbeat_miss_threshold: int = 3
    # -- actor reconstruction: checkpoint actor state into the reliable
    # cache every N completed method calls (0 disables).  A checkpointed
    # actor restarts on a surviving node when its home dies; methods are
    # at-least-once across a restart (calls after the last checkpoint
    # may re-execute), so recoverable actors should be idempotent.
    actor_checkpoint_every: int = 1
    # -- strict plans: statically sanitize every physical plan (cycles,
    # orphan tasks, placement hazards, memory over-subscription) before any
    # task is submitted, and refuse to launch plans with errors.
    strict_plans: bool = False
    # -- fast data plane.  Each mechanism has its own switch so the
    # benchmarks can A/B them independently; turning all four off recovers
    # the legacy store-and-forward data plane bit-for-bit.
    # chunked cut-through: pipeline bulk transfers across hops in fixed
    # chunks instead of serializing the whole object once per hop
    chunked_transfers: bool = True
    # concurrent consumers of one object on one device share a single
    # in-flight transfer instead of each paying the bytes
    fetch_dedup: bool = True
    # push-mode waves distribute one object to many consumers along a
    # spanning tree (serialize once per link) instead of per-consumer unicasts
    multicast_pushes: bool = True
    # locality placement prices per-link queueing + degradation into its
    # transfer-time estimates instead of assuming an idle fabric
    contention_aware_placement: bool = True
    # -- overload control.  Four independent mechanisms, each behind its own
    # switch; the all-off default reproduces pre-overload event traces
    # bit-for-bit (no extra events, no extra virtual time).
    # bounded admission: refuse work beyond ``admission_queue_depth`` open
    # tasks instead of queueing without bound.  Policy decides how: reject
    # (AdmissionRejectedError), shed the lowest-priority pending task, or
    # park in a bounded overflow queue drained as tasks close.
    admission_control: bool = False
    admission_queue_depth: int = 64
    admission_policy: AdmissionPolicy = AdmissionPolicy.REJECT
    admission_overflow_depth: int = 64  # QUEUE_WITH_DEADLINE park capacity
    # per-raylet admission window: max task attempts dispatched-but-not-
    # concluded per raylet (None: no per-raylet bound)
    raylet_admission_depth: Optional[int] = None
    # retry budgets: a per-node token bucket (start/cap ``retry_budget_cap``)
    # drained 1 token per retry, refilled ``retry_budget_ratio`` per
    # first-attempt success — retries cannot exceed ~ratio x useful work.
    retry_budget: bool = False
    retry_budget_ratio: float = 0.2
    retry_budget_cap: float = 16.0
    # deadline propagation: submit(deadline=) flows min(own, producers')
    # through the graph; attempts past their deadline are skipped and the
    # task cancelled (cancellation cascades to downstream consumers).
    deadline_propagation: bool = False
    # circuit breakers: per-device CLOSED/OPEN/HALF_OPEN state machines over
    # device-attributed transient failures + health signals; open devices
    # shed load, half-open devices take one probe at a time.
    device_circuit_breakers: bool = False
    breaker_failure_threshold: int = 5
    breaker_reset_after: float = 5e-3  # virtual seconds OPEN before probing
    breaker_probe_successes: int = 2
    # -- serving frontend (repro.serving).  These gate how a
    # ServingFrontend attached to this runtime behaves; none of them touch
    # the single-driver path, so the all-off defaults (and any setting,
    # absent a frontend) leave legacy traces bit-for-bit identical.
    # weighted fair queueing: drain the frontend's waiting room by
    # per-tenant virtual finish time (throughput proportional to tenant
    # weight) instead of strict FIFO.
    serving_fair_queueing: bool = False
    # per-tenant quotas: shed a tenant's requests beyond its profile's
    # max_open open requests.
    serving_tenant_isolation: bool = False
    # SLO deadlines: stamp submit(deadline=arrival+slo, priority=) from the
    # tenant profile onto every request stage.
    serving_slo_deadlines: bool = False
    # pacing: at most this many requests in flight in the runtime (None:
    # unbounded — every request dispatches the instant it arrives); excess
    # waits in a bounded room of serving_queue_depth, shed beyond.
    serving_max_inflight: Optional[int] = None
    serving_queue_depth: int = 256
    # head-node balancer: rebalance a session off a head running hotter
    # than the coldest by this factor for this many consecutive checks.
    serving_rebalance_threshold: float = 2.0
    serving_rebalance_patience: int = 3
    # -- distributed sanitizer (repro.analysis.dist, "Skadi-TSan").  Which
    # probe modes to arm: "trace" collects the protocol-event stream,
    # "invariants" runs the protocol monitors online, "hb" collects the
    # stream and enables happens-before race detection at report time.
    # The empty default constructs no probe at all — every hook site is a
    # ``probe is not None`` check, so the legacy event traces (and their
    # virtual timings) are reproduced bit-for-bit.
    sanitizers: Tuple[str, ...] = ()
    # -- control-plane HA (repro.runtime.ha).  ``ha_replicas > 0`` keeps a
    # write-ahead log of control-plane mutations (ownership transitions,
    # breaker flips, death/revival declarations, lease grants) replicated
    # to that many standby server nodes over the simulated network, stamps
    # a fencing epoch on every leader lease, and arms seeded deterministic
    # leader election + log replay when the head dies (the chaos
    # ``fail_gcs`` fault).  The zero default constructs no controller at
    # all — every hook site is an ``ha is None`` check — so the legacy
    # event traces (and their virtual timings) are reproduced bit-for-bit.
    ha_replicas: int = 0
    # leader -> standby WAL flush cadence in virtual seconds; the flush
    # doubles as the liveness beacon the standbys watch.
    ha_sync_interval: float = 1e-3
    # consecutive silent sync intervals before a standby calls an election
    ha_miss_threshold: int = 3
    # seed mixed with the new epoch for the deterministic winner draw
    ha_election_seed: int = 0
    # virtual seconds the election winner spends replaying one WAL record
    ha_replay_cost: float = 2e-7
    # -- simulator core.  Opt-in analytic idle fast-forward: when every
    # event at the queue head is a *poller* tick (heartbeats, WAL syncs,
    # breaker probes created via ``Simulator.poll_timeout``) and no
    # component has armed exact polling (``Simulator.arm_poller`` — chaos
    # schedules and failure detection do), the kernel jumps virtual time
    # to the next real event instead of stepping through empty poll
    # rounds.  Off by default: the all-off setting replays legacy event
    # traces bit-for-bit, and fast-forward intentionally elides idle poll
    # events (event *counts* differ even though outcomes do not).
    sim_fast_forward: bool = False
    # accounting
    track_task_timeline: bool = True

    def describe(self) -> str:
        return (
            f"gen{self.generation.value}/{self.resolution.value}/"
            f"{self.scheduling.value}"
        )
