"""The runtime's failure/recovery event log.

Every control-plane incident — a node death, a heartbeat suspicion, a
lineage replay, a retry, an actor restart, a chaos injection — is recorded
as a :class:`RuntimeEvent`.  The log serves three masters:

* the Chrome trace exporter renders these as instant events, so recovery
  storms are visible in Perfetto next to the task spans they perturb;
* chaos tests assert that a seeded fault schedule reproduces the
  *identical* event sequence (the determinism contract);
* benchmarks count suspicions/retries/replays to attribute recovery cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["RuntimeEvent", "EventLog"]


@dataclass(frozen=True)
class RuntimeEvent:
    """One timestamped control-plane incident."""

    time: float
    kind: str  # e.g. "node_suspected", "task_retry", "actor_restart"
    detail: Tuple[Tuple[str, Any], ...] = ()

    def __getitem__(self, key: str) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.detail)


class EventLog:
    """An append-only event list with counting helpers."""

    def __init__(self) -> None:
        self.events: List[RuntimeEvent] = []
        # observer poked on every record — the telemetry plane mirrors the
        # log into incident counters so both views share one source of truth
        self.on_record: Optional[Callable[[RuntimeEvent], None]] = None
        # additional observers (the dist-sanitizer probe mirrors chaos
        # injections without displacing the telemetry hook above)
        self._observers: List[Callable[[RuntimeEvent], None]] = []

    def add_observer(self, observer: Callable[[RuntimeEvent], None]) -> None:
        self._observers.append(observer)

    def record(self, time: float, kind: str, **detail: Any) -> RuntimeEvent:
        ev = RuntimeEvent(time, kind, tuple(sorted(detail.items())))
        self.events.append(ev)
        if self.on_record is not None:
            self.on_record(ev)
        for observer in self._observers:
            observer(ev)
        return ev

    def of_kind(self, kind: str) -> List[RuntimeEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def counts(self) -> Dict[str, int]:
        """Occurrences per kind, sorted by kind (comparable to telemetry)."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return dict(sorted(out.items()))

    def signature(self) -> List[Tuple[float, str, Tuple[Tuple[str, Any], ...]]]:
        """A comparable fingerprint: two seeded runs must produce equal
        signatures (the chaos determinism contract)."""
        return [(round(e.time, 12), e.kind, e.detail) for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RuntimeEvent]:
        return iter(self.events)
