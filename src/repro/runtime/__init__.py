"""The stateful serverless runtime (the paper's §2.3, built from scratch).

A mini-Ray over the simulated disaggregated cluster: distributed task and
actor APIs, futures with a heterogeneity-aware ownership table, per-device
plasma stores with spill to disaggregated memory, pull/push future
resolution, data-centric and gang scheduling, lineage and reliable-cache
fault tolerance.
"""

from .config import (
    AdmissionPolicy,
    Generation,
    ResolutionMode,
    RuntimeConfig,
    SchedulingPolicy,
)
from .events import EventLog, RuntimeEvent
from .ha import HAController, WalRecord
from .health import HeartbeatMonitor
from .ids import IdGenerator
from .lineage import LineageGraph, UnrecoverableObjectError
from .local import LocalActorHandle, LocalRuntime
from .object_ref import ObjectRef, collect_refs, replace_refs
from .overload import (
    AdmissionRejectedError,
    BreakerState,
    CircuitBreaker,
    RetryBudget,
    backoff_jitter_fraction,
    retry_backoff_delay,
)
from .object_store import (
    LocalObjectStore,
    ObjectStoreFullError,
    SpillFailedError,
    StoredObject,
    StoreUnavailableError,
)
from .ownership import OwnershipEntry, OwnershipTable, ValueState
from .raylet import Raylet
from .runtime import (
    ActorHandle,
    GetTimeoutError,
    ServerlessRuntime,
    TaskCancelledError,
    TaskError,
    TaskTimeline,
    make_reliable_cache,
)
from .scheduler import PlacementError, Scheduler
from .task import ANY_COMPUTE_KIND, ActorSpec, TaskSpec, TaskState
from .trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "Generation",
    "ResolutionMode",
    "SchedulingPolicy",
    "AdmissionPolicy",
    "RuntimeConfig",
    "AdmissionRejectedError",
    "RetryBudget",
    "CircuitBreaker",
    "BreakerState",
    "backoff_jitter_fraction",
    "retry_backoff_delay",
    "TaskCancelledError",
    "IdGenerator",
    "LineageGraph",
    "UnrecoverableObjectError",
    "ObjectRef",
    "collect_refs",
    "replace_refs",
    "LocalObjectStore",
    "StoredObject",
    "ObjectStoreFullError",
    "SpillFailedError",
    "StoreUnavailableError",
    "OwnershipTable",
    "OwnershipEntry",
    "ValueState",
    "Raylet",
    "ServerlessRuntime",
    "ActorHandle",
    "TaskError",
    "GetTimeoutError",
    "HeartbeatMonitor",
    "HAController",
    "WalRecord",
    "EventLog",
    "RuntimeEvent",
    "TaskTimeline",
    "make_reliable_cache",
    "Scheduler",
    "PlacementError",
    "TaskSpec",
    "TaskState",
    "ActorSpec",
    "ANY_COMPUTE_KIND",
    "LocalRuntime",
    "LocalActorHandle",
    "to_chrome_trace",
    "write_chrome_trace",
]
