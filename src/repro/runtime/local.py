"""LocalRuntime: the same task/actor API over a real thread pool.

The simulated :class:`ServerlessRuntime` is the research vehicle; this
backend runs the identical programming model (tasks, futures, actors) with
genuine concurrency on the local machine, so libraries written against the
task API are directly usable outside the simulator.

Scheduling is dependency-driven: a task enters the pool only when every
ObjectRef argument has resolved (no worker ever blocks waiting on another
task, so bounded pools cannot deadlock on deep chains).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .ids import IdGenerator
from .object_ref import ObjectRef, collect_refs, replace_refs
from .runtime import TaskError

__all__ = ["LocalRuntime", "LocalActorHandle"]


class LocalActorHandle:
    """Handle to a stateful actor; method calls serialize on its lock."""

    def __init__(self, runtime: "LocalRuntime", actor_id: str, state: Any):
        self._runtime = runtime
        self.actor_id = actor_id
        self._state = state
        self._lock = threading.Lock()

    def call(self, method: Callable[..., Any], *args: Any, **kwargs: Any) -> ObjectRef:
        """Invoke ``method(state, *args, **kwargs)``; mutually exclusive per
        actor, concurrent across actors."""

        def run(*resolved_args: Any, **resolved_kwargs: Any) -> Any:
            with self._lock:
                return method(self._state, *resolved_args, **resolved_kwargs)

        run.__name__ = f"{self.actor_id}.{getattr(method, '__name__', 'method')}"
        return self._runtime.submit(run, args, kwargs)


class _PendingTask:
    __slots__ = ("func", "args", "kwargs", "future", "remaining", "lock")

    def __init__(self, func, args, kwargs, future, remaining):
        self.func = func
        self.args = args
        self.kwargs = kwargs
        self.future = future
        self.remaining = remaining
        self.lock = threading.Lock()


class LocalRuntime:
    """Thread-pool backend for the distributed task API."""

    def __init__(self, max_workers: Optional[int] = None):
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._ids = IdGenerator()
        self._futures: Dict[str, Future] = {}
        self._futures_lock = threading.Lock()
        self._closed = False

    # -- object API -----------------------------------------------------------

    def put(self, value: Any) -> ObjectRef:
        oid = self._ids.object_id()
        future: Future = Future()
        future.set_result(value)
        with self._futures_lock:
            self._futures[oid] = future
        return ObjectRef(oid, owner="local-driver")

    def get(self, refs, timeout: Optional[float] = None) -> Any:
        single = isinstance(refs, ObjectRef)
        ref_list = [refs] if single else list(refs)
        values = []
        for ref in ref_list:
            future = self._future_of(ref)
            try:
                values.append(future.result(timeout=timeout))
            except TaskError:
                raise
            except Exception as exc:
                raise TaskError(f"task for {ref.object_id} failed: {exc}") from exc
        return values[0] if single else values

    def wait(
        self, refs: Sequence[ObjectRef], num_returns: int = 1, timeout: Optional[float] = None
    ) -> Tuple[List[ObjectRef], List[ObjectRef]]:
        import concurrent.futures as cf

        refs = list(refs)
        if num_returns > len(refs):
            raise ValueError(f"num_returns={num_returns} > {len(refs)} refs")
        future_map = {self._future_of(r): r for r in refs}
        done, not_done = cf.wait(
            future_map.keys(),
            timeout=timeout,
            return_when=cf.ALL_COMPLETED if num_returns == len(refs) else cf.FIRST_COMPLETED,
        )
        while len(done) < num_returns:
            more_done, not_done = cf.wait(not_done, timeout=timeout, return_when=cf.FIRST_COMPLETED)
            if not more_done:
                break
            done |= more_done
        ready = [future_map[f] for f in done]
        pending = [future_map[f] for f in not_done]
        return ready[:num_returns], ready[num_returns:] + pending

    def _future_of(self, ref: ObjectRef) -> Future:
        with self._futures_lock:
            future = self._futures.get(ref.object_id)
        if future is None:
            raise KeyError(f"unknown object {ref.object_id!r}")
        return future

    # -- task API ----------------------------------------------------------------

    def submit(
        self,
        func: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        name: str = "",
        **_ignored: Any,
    ) -> ObjectRef:
        """Launch a task; ObjectRef arguments resolve before it runs.

        Extra keyword options of the simulated runtime (compute_cost,
        supported_kinds, ...) are accepted and ignored, so call sites can
        target either backend.
        """
        if self._closed:
            raise RuntimeError("runtime has been shut down")
        kwargs = dict(kwargs or {})
        oid = self._ids.object_id()
        out: Future = Future()
        with self._futures_lock:
            self._futures[oid] = out

        deps = collect_refs((args, kwargs))
        task = _PendingTask(func, args, kwargs, out, remaining=len(deps))
        if not deps:
            self._launch(task)
            return ObjectRef(oid, owner="local-driver")

        for dep in deps:
            dep_future = self._future_of(dep)
            dep_future.add_done_callback(lambda _f, t=task: self._dep_done(t))
        return ObjectRef(oid, owner="local-driver")

    def _dep_done(self, task: _PendingTask) -> None:
        with task.lock:
            task.remaining -= 1
            ready = task.remaining == 0
        if ready:
            self._launch(task)

    def _launch(self, task: _PendingTask) -> None:
        def run() -> None:
            try:
                resolved: Dict[str, Any] = {}
                for ref in collect_refs((task.args, task.kwargs)):
                    future = self._future_of(ref)
                    exc = future.exception()
                    if exc is not None:
                        raise TaskError(
                            f"dependency {ref.object_id} failed: {exc}"
                        ) from exc
                    resolved[ref.object_id] = future.result()
                args = replace_refs(list(task.args), resolved)
                kwargs = replace_refs(dict(task.kwargs), resolved)
                task.future.set_result(task.func(*args, **kwargs))
            except BaseException as exc:  # surface everything at get()
                task.future.set_exception(exc)

        self._pool.submit(run)

    # -- actors ---------------------------------------------------------------------

    def create_actor(
        self, ctor: Callable[..., Any], args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None, **_ignored: Any
    ) -> LocalActorHandle:
        state = ctor(*args, **(kwargs or {}))
        return LocalActorHandle(self, self._ids.actor_id(), state)

    # -- lifecycle ---------------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "LocalRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
