"""Per-node plasma-like object store with spill to disaggregated memory.

Each raylet manages one of these ("a distributed object store called
plasma", §2.3.1).  Values are real Python objects; capacity is accounted
against the hosting device's memory, and overflow spills to a
disaggregated-memory blade when the runtime has one (Gen-2 key change #3:
"extend the caching layer to include disaggregated memory").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..cluster.hardware import Device

__all__ = [
    "LocalObjectStore",
    "StoredObject",
    "ObjectStoreFullError",
    "SpillFailedError",
    "StoreUnavailableError",
]


class ObjectStoreFullError(MemoryError):
    """No room locally and no spill target configured."""


class SpillFailedError(ObjectStoreFullError):
    """The spill target refused the victim (full or dead blade).

    Crash-consistency contract: when this is raised the victim is still
    intact in the local store — spill writes to the target *before*
    deleting locally, so a failed spill never destroys data.
    """


class StoreUnavailableError(RuntimeError):
    """The store's backing device is dead; reads and writes are impossible."""


@dataclass
class StoredObject:
    object_id: str
    value: Any
    nbytes: int
    device_id: str


class LocalObjectStore:
    """Object storage backed by one device's memory, LRU-spilled."""

    def __init__(self, device: Device, spill_target: Optional["LocalObjectStore"] = None):
        self.device = device
        self.spill_target = spill_target
        self._objects: "OrderedDict[str, StoredObject]" = OrderedDict()
        self.spilled_out = 0
        self.spilled_bytes = 0
        self._used = 0
        # a telemetry MetricsRegistry, wired in by the runtime (this layer
        # sits below repro.telemetry, so the attribute is duck-typed)
        self.metrics = None
        # poked after a successful spill so the runtime can move the object's
        # directory location from this device's node to the spill target's
        self.on_spill: Optional[Callable[[str, "LocalObjectStore"], None]] = None

    def _meter_resident(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "skadi_store_bytes_resident",
                "bytes resident in each device's object store",
                device=self.device.device_id,
            ).set(float(self._used))

    @property
    def node_id(self) -> str:
        return self.device.node_id

    def put(self, object_id: str, value: Any, nbytes: int) -> Tuple[StoredObject, int]:
        """Store a value; returns (record, bytes_spilled_to_make_room)."""
        if not self.device.alive:
            raise StoreUnavailableError(
                f"store on {self.device.device_id} is backed by a dead device"
            )
        if object_id in self._objects:
            raise KeyError(f"object {object_id!r} already in store on {self.node_id}")
        spilled = 0
        while not self.device.reserve_memory(nbytes):
            spilled += self._spill_one(needed=nbytes)
        record = StoredObject(object_id, value, nbytes, self.device.device_id)
        self._objects[object_id] = record
        self._used += nbytes
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_store_puts_total",
                "objects written into each device's store",
                device=self.device.device_id,
            ).inc()
            self._meter_resident()
        return record, spilled

    def _spill_one(self, needed: int) -> int:
        if not self._objects:
            raise ObjectStoreFullError(
                f"object of {needed}B cannot fit in empty store on "
                f"{self.device.device_id} ({self.device.spec.memory_bytes}B)"
            )
        if self.spill_target is None:
            raise ObjectStoreFullError(
                f"store on {self.device.device_id} full and no spill target"
            )
        victim_id, victim = next(iter(self._objects.items()))
        # crash consistency: the victim must land on the spill target BEFORE
        # it leaves this store — a full or dead blade must not destroy the
        # only copy.  On failure the victim is untouched and the caller sees
        # a typed error instead of silent data loss.
        try:
            self.spill_target.put(victim_id, victim.value, victim.nbytes)
        except (ObjectStoreFullError, StoreUnavailableError) as exc:
            raise SpillFailedError(
                f"spill of {victim_id!r} ({victim.nbytes}B) from "
                f"{self.device.device_id} to {self.spill_target.device.device_id} "
                f"failed; victim retained locally: {exc}"
            ) from exc
        del self._objects[victim_id]
        self.device.free_memory(victim.nbytes)
        self._used -= victim.nbytes
        self.spilled_out += 1
        self.spilled_bytes += victim.nbytes
        if self.on_spill is not None:
            self.on_spill(victim_id, self.spill_target)
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_store_evictions_total",
                "LRU spills out of each device's store",
                device=self.device.device_id,
            ).inc()
            self._meter_resident()
        return victim.nbytes

    def get(self, object_id: str) -> StoredObject:
        record = self._objects.get(object_id)
        if record is None:
            raise KeyError(f"object {object_id!r} not in store on {self.node_id}")
        self._objects.move_to_end(object_id)
        return record

    def contains(self, object_id: str) -> bool:
        return object_id in self._objects

    def delete(self, object_id: str) -> bool:
        record = self._objects.pop(object_id, None)
        if record is None:
            return False
        self.device.free_memory(record.nbytes)
        self._used -= record.nbytes
        self._meter_resident()
        return True

    def clear(self) -> None:
        """Drop everything (node failure)."""
        for record in self._objects.values():
            self.device.free_memory(record.nbytes)
        self._objects.clear()
        self._used = 0
        self._meter_resident()

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._objects)
