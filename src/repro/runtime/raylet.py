"""Raylets: the per-node (Gen-1) / per-device (Gen-2) control daemons.

Figure 3's two generations differ in *where* raylets run:

* **Gen-1** — one raylet per node, hosted on the server CPU or, for a
  physically-disaggregated card, on its DPU.  Every control action for a
  companion device (task dispatch, future resolution) is handled by — and
  serialized through — the DPU raylet ("the management of tasks and
  pointers must go through the centralized DPU").
* **Gen-2** — additionally, a device-specific raylet on each heterogeneous
  device, so control actions terminate at the device itself.

A raylet owns an object store per managed device and a control
:class:`Resource` that serializes its control-plane work; each action
costs the *hosting* device's ``dispatch_overhead``, which is what makes a
slow DPU a bottleneck for swarms of short-lived ops.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from ..cluster.hardware import Device, DeviceKind
from ..cluster.simtime import Resource, Signal, Simulator
from .object_store import LocalObjectStore

__all__ = ["Raylet"]


class Raylet:
    """A control daemon hosted on ``host_device``, managing ``devices``."""

    def __init__(
        self,
        sim: Simulator,
        host_device: Device,
        devices: List[Device],
        spill_store: Optional[LocalObjectStore] = None,
    ):
        if host_device not in devices and host_device.kind != DeviceKind.DPU:
            # A DPU raylet manages companions without being a compute target;
            # any other host must manage itself.
            devices = [host_device] + devices
        self.sim = sim
        self.host_device = host_device
        self.devices = list(devices)
        self.stores: Dict[str, LocalObjectStore] = {
            dev.device_id: LocalObjectStore(dev, spill_target=spill_store)
            for dev in self.devices
        }
        self.control_slot = Resource(sim, capacity=1, name=f"ctrl:{self.raylet_id}")
        self.control_actions = 0
        # in-flight fetch registry: (object_id, device_id) -> completion
        # signal of the transfer currently bringing that object to that
        # device.  Concurrent consumers attach to the pending fetch instead
        # of paying the bytes again (fetch deduplication).
        self._inflight_fetches: Dict[Tuple[str, str], Signal] = {}
        self.fetches_deduped = 0
        # admission window: task attempts dispatched to this raylet and not
        # yet concluded (finished/failed/cancelled).  The runtime bounds this
        # when per-raylet admission control is on.
        self.admission_inflight = 0
        # telemetry MetricsRegistry, wired in by the runtime (duck-typed)
        self.metrics = None
        # dist-sanitizer probe, wired in by the runtime (duck-typed).  The
        # fetch registry is per-raylet state, so its begin/end/dedup/abort
        # ops are attributed to this raylet's site.
        self.probe = None
        self.alive = True
        self.incarnation = 0  # bumped on every restart (stale-lease detection)
        self.failures = 0
        # -- control-plane HA (repro.runtime.ha) --
        # highest GCS fencing epoch this raylet has observed; leases stamped
        # with an older epoch come from a deposed leader and are rejected
        self.gcs_epoch = 0
        # done-reports sent to the GCS but not yet acknowledged.  If the
        # head dies before acking, the reports re-send at re-registration
        # so the new leader learns about commits the WAL missed.
        self._unacked_reports: List[Tuple] = []

    @property
    def raylet_id(self) -> str:
        return f"raylet@{self.host_device.device_id}"

    @property
    def endpoint(self) -> str:
        """Where control messages for this raylet terminate."""
        return self.host_device.device_id

    @property
    def node_id(self) -> str:
        return self.host_device.node_id

    def manages(self, device_id: str) -> bool:
        return device_id in self.stores

    def store_of(self, device_id: str) -> LocalObjectStore:
        store = self.stores.get(device_id)
        if store is None:
            raise KeyError(f"{self.raylet_id} does not manage device {device_id!r}")
        return store

    def find_object(self, object_id: str) -> Optional[LocalObjectStore]:
        """The managed store holding ``object_id``, if any."""
        for store in self.stores.values():
            if store.contains(object_id):
                return store
        return None

    # -- admission window -----------------------------------------------------

    def has_admission_capacity(self, depth: int) -> bool:
        return self.admission_inflight < depth

    def admit_attempt(self) -> None:
        self.admission_inflight += 1
        self._gauge_admission()

    def conclude_attempt(self) -> None:
        if self.admission_inflight > 0:
            self.admission_inflight -= 1
        self._gauge_admission()

    def _gauge_admission(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "skadi_admission_queue_depth",
                "task attempts admitted and not yet concluded, per scope",
                scope=self.raylet_id,
            ).set(self.admission_inflight)

    # -- fetch deduplication --------------------------------------------------

    def pending_fetch(self, object_id: str, device_id: str) -> Optional[Signal]:
        """The in-flight fetch of ``object_id`` to ``device_id``, if any."""
        return self._inflight_fetches.get((object_id, device_id))

    def begin_fetch(self, object_id: str, device_id: str) -> Signal:
        """Register a fetch as in flight; later requesters ride its signal.

        The caller owns the fetch and must call :meth:`end_fetch` when it
        completes (successfully or not).
        """
        sig = Signal(self.sim)
        self._inflight_fetches[(object_id, device_id)] = sig
        if self.probe is not None:
            self.probe.fetch_begin(self.endpoint, object_id, device_id)
        return sig

    def end_fetch(self, object_id: str, device_id: str) -> None:
        sig = self._inflight_fetches.pop((object_id, device_id), None)
        if sig is not None:
            if self.probe is not None:
                self.probe.fetch_end(self.endpoint, object_id, device_id)
            if not sig.triggered:
                sig.succeed()

    def note_deduped_fetch(self, device_id: str, object_id: Optional[str] = None) -> None:
        if self.probe is not None and object_id is not None:
            self.probe.fetch_dedup(self.endpoint, object_id, device_id)
        self.fetches_deduped += 1
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_fetch_dedup_total",
                "concurrent same-object fetches coalesced onto one transfer",
                raylet=self.raylet_id,
                device=device_id,
            ).inc()

    def abort_fetches(self) -> None:
        """Release every waiter parked on this raylet's in-flight fetches
        (used on failure so followers fall into their retry paths instead
        of waiting on a dead leader)."""
        pending, self._inflight_fetches = self._inflight_fetches, {}
        for (object_id, device_id), sig in pending.items():
            if self.probe is not None:
                self.probe.fetch_abort(self.endpoint, object_id, device_id)
            if not sig.triggered:
                sig.succeed()

    def control(self, actions: int = 1):
        """A process charging ``actions`` control-plane handling costs.

        Control work is serialized on this raylet — the heart of the
        CPU(DPU)-centric bottleneck Gen-2 removes.
        """
        cost = self.host_device.spec.dispatch_overhead * actions
        self.control_actions += actions
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_raylet_control_actions_total",
                "control-plane actions serialized through each raylet",
                raylet=self.raylet_id,
            ).inc(actions)

        def _handle() -> Generator:
            yield self.control_slot.request()
            try:
                yield self.sim.timeout(cost)
            finally:
                self.control_slot.release()

        return self.sim.process(_handle(), name=f"{self.raylet_id}:ctrl")

    # -- control-plane HA: fencing epochs and report buffering ----------------

    def observe_epoch(self, epoch: int) -> None:
        """Learn a (newer) GCS fencing epoch — from re-registration or from
        the first lease a post-failover leader sends here."""
        if epoch > self.gcs_epoch:
            self.gcs_epoch = epoch

    def accepts_epoch(self, epoch: int) -> bool:
        """A lease carrying an older epoch than this raylet has observed was
        granted by a deposed leader: reject it (split-brain fencing)."""
        return epoch >= self.gcs_epoch

    def buffer_report(self, report: Tuple) -> None:
        self._unacked_reports.append(report)

    def ack_report(self, report: Tuple) -> None:
        try:
            self._unacked_reports.remove(report)
        except ValueError:
            pass

    def unacked_reports(self) -> List[Tuple]:
        return list(self._unacked_reports)

    def fail(self) -> None:
        """Node failure: all local object copies vanish."""
        if self.alive:
            self.failures += 1
        self.alive = False
        self.abort_fetches()
        self._unacked_reports.clear()
        for store in self.stores.values():
            store.clear()

    def fail_control(self) -> None:
        """Only the control daemon dies; managed device memory survives.

        This is the DPU failure mode: the card's raylet ran on the DPU, but
        the companion GPU/FPGA memory backing its object stores is separate
        silicon and keeps its contents.  A takeover raylet can adopt the
        stores intact.
        """
        if self.alive:
            self.failures += 1
        self.alive = False
        self.abort_fetches()
        self._unacked_reports.clear()

    def restart(self) -> None:
        if not self.alive:
            self.incarnation += 1
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Raylet({self.raylet_id}, devices={[d.device_id for d in self.devices]})"
