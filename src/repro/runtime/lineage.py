"""Lineage: recover lost objects by re-executing the tasks that made them.

§2.1: "Skadi handles failures in two ways: (1) re-executes the graph using
lineage, or (2) uses a reliable caching layer with data replication or EC."
This module is way (1): a record of which task produced which object, and a
planner that, given a lost object, walks the lineage backwards to emit the
minimal re-execution plan in dependency order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .ownership import OwnershipTable, ValueState
from .task import TaskSpec

__all__ = ["LineageGraph", "UnrecoverableObjectError"]


class UnrecoverableObjectError(RuntimeError):
    """No lineage and no live copy — the object cannot come back."""


@dataclass
class _LineageRecord:
    task: TaskSpec
    output_ids: List[str]


class LineageGraph:
    """Task table + object->producer edges."""

    def __init__(self) -> None:
        self._by_task: Dict[str, _LineageRecord] = {}
        self._producer_of: Dict[str, str] = {}  # object_id -> task_id
        self.replays = 0

    def record(self, task: TaskSpec, output_ids: List[str]) -> None:
        self._by_task[task.task_id] = _LineageRecord(task, list(output_ids))
        for oid in output_ids:
            self._producer_of[oid] = task.task_id

    def producer(self, object_id: str) -> Optional[TaskSpec]:
        task_id = self._producer_of.get(object_id)
        if task_id is None:
            return None
        return self._by_task[task_id].task

    def outputs_of(self, task_id: str) -> List[str]:
        record = self._by_task.get(task_id)
        return list(record.output_ids) if record else []

    def plan_recovery(
        self, object_id: str, ownership: OwnershipTable
    ) -> List[TaskSpec]:
        """Tasks to re-execute (dependencies first) to rematerialize
        ``object_id``.  Objects still READY are treated as available and not
        recomputed; the depth of this plan is what experiment E5 charts."""
        plan: List[TaskSpec] = []
        planned: Set[str] = set()

        def visit(oid: str, chain: Set[str]) -> None:
            if ownership.contains(oid) and ownership.entry(oid).state == ValueState.READY:
                return
            task = self.producer(oid)
            if task is None:
                raise UnrecoverableObjectError(
                    f"object {oid!r} is lost and has no recorded lineage"
                )
            if task.task_id in chain:
                raise UnrecoverableObjectError(
                    f"lineage cycle detected at task {task.task_id!r}"
                )
            if task.task_id in planned:
                return
            for dep in task.dependencies:
                visit(dep.object_id, chain | {task.task_id})
            planned.add(task.task_id)
            plan.append(task)

        visit(object_id, set())
        return plan

    def __len__(self) -> int:
        return len(self._by_task)
