"""Task placement: the control plane's scheduling policies.

§2.3: "the control plane embraces data-centric scheduling for higher
utilization, and forgoes the CPU-centric model to better support
short-lived operators on heterogeneous hardware.  If necessary, it could
also integrate gang-scheduling to support SPMD-style sub-graphs."

The scheduler is a pure placement engine: given a task, the candidate
devices, and the object directory, pick a device.  The runtime owns the
event-driven plumbing around it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..cluster.cluster import Cluster
from ..cluster.hardware import Device
from .config import SchedulingPolicy
from .ownership import OwnershipTable, ValueState
from .task import TaskSpec

__all__ = ["Scheduler", "PlacementError"]


class PlacementError(RuntimeError):
    """No device can host the task."""


class Scheduler:
    """Centralized scheduler with pluggable placement policy."""

    def __init__(
        self,
        cluster: Cluster,
        ownership: OwnershipTable,
        policy: SchedulingPolicy,
        schedulable_devices: Sequence[Device],
        endpoint: str,
        metrics=None,
        contention_aware: bool = False,
    ):
        if not schedulable_devices:
            raise PlacementError("no schedulable devices in the cluster")
        self.cluster = cluster
        self.ownership = ownership
        self.policy = policy
        self.endpoint = endpoint  # where the scheduler runs (control messages)
        self.metrics = metrics  # optional telemetry MetricsRegistry
        # price per-link queueing into locality estimates (vs. idle fabric)
        self.contention_aware = contention_aware
        self._devices = list(schedulable_devices)
        self._outstanding: Dict[str, int] = {d.device_id: 0 for d in self._devices}
        self._rr_cursor = 0
        # the runtime narrows this to "raylet is alive" after node failures
        self.alive_filter: Callable[[str], bool] = lambda _device_id: True
        # devices on suspected/dead nodes, excluded at placement time until
        # the failure detector (or an explicit restart) clears them
        self._blacklisted: set[str] = set()
        # overload control: the runtime installs a circuit-breaker predicate
        # here; devices it rejects are skipped *if* other candidates remain
        # (a fully-tripped pool falls back to ignoring breakers rather than
        # refusing placement outright)
        self.breaker_filter: Callable[[str], bool] = lambda _device_id: True

    # -- blacklisting (failure detection feeds this) -------------------------

    def blacklist(self, device_id: str) -> None:
        self._blacklisted.add(device_id)
        self._meter_capacity()

    def unblacklist(self, device_id: str) -> None:
        self._blacklisted.discard(device_id)
        self._meter_capacity()

    def _meter_capacity(self) -> None:
        """Degraded-mode visibility: how much of the cluster can still be
        scheduled onto.  Killing a single GPU shrinks these gauges without
        failing the job — the telemetry face of device-granular failure."""
        if self.metrics is None:
            return
        live = [
            d
            for d in self._devices
            if d.device_id not in self._blacklisted and self.alive_filter(d.device_id)
        ]
        self.metrics.gauge(
            "skadi_scheduler_capacity_slots",
            "total task slots across schedulable (non-blacklisted, live) devices",
        ).set(float(sum(d.spec.slots for d in live)))
        self.metrics.gauge(
            "skadi_scheduler_schedulable_devices",
            "devices the scheduler may currently place work on",
        ).set(float(len(live)))

    def clear_blacklist(self) -> None:
        """Forget every placement exclusion (control-plane HA failover: the
        winner re-derives the blacklist from its replicated WAL)."""
        self._blacklisted.clear()
        self._meter_capacity()

    def is_blacklisted(self, device_id: str) -> bool:
        return device_id in self._blacklisted

    @property
    def blacklisted_devices(self) -> frozenset:
        return frozenset(self._blacklisted)

    # -- bookkeeping the runtime drives -------------------------------------

    def task_started(self, device_id: str) -> None:
        self._outstanding[device_id] = self._outstanding.get(device_id, 0) + 1
        self._meter_outstanding(device_id)

    def task_finished(self, device_id: str) -> None:
        self._outstanding[device_id] = max(0, self._outstanding.get(device_id, 0) - 1)
        self._meter_outstanding(device_id)

    def _meter_outstanding(self, device_id: str) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "skadi_device_outstanding_tasks",
                "tasks running or queued on each device",
                device=device_id,
            ).set(float(self._outstanding.get(device_id, 0)))

    def outstanding(self, device_id: str) -> int:
        return self._outstanding.get(device_id, 0)

    # -- static plan sanitation ----------------------------------------------

    def sanitize_plan(self, pgraph):
        """Statically check a physical plan against this scheduler's world
        view: the schedulable device list plus everything currently
        blacklisted or failed.  Returns the full ``DiagnosticSet``; strict
        callers raise on ``not diags.ok``."""
        from ..analysis.sanitizer import DeviceView, sanitize_plan

        dead = set(self._blacklisted)
        dead.update(
            d.device_id for d in self._devices if not self.alive_filter(d.device_id)
        )
        view = getattr(self, "_plan_view", None)
        if view is None or view.blacklist != dead:
            view = DeviceView(self._devices, dead)
            self._plan_view = view
        return sanitize_plan(pgraph, devices=view)

    # -- placement -----------------------------------------------------------

    def candidates(self, task: TaskSpec) -> List[Device]:
        if task.pinned_device is not None:
            matches = [d for d in self._devices if d.device_id == task.pinned_device]
            if not matches:
                raise PlacementError(
                    f"task {task.task_id} pinned to unknown/unschedulable device "
                    f"{task.pinned_device!r}"
                )
            return matches
        matches = [
            d
            for d in self._devices
            if d.kind in task.supported_kinds
            and d.device_id not in self._blacklisted
            and self.alive_filter(d.device_id)
        ]
        if not matches:
            raise PlacementError(
                f"task {task.task_id} supports {sorted(k.value for k in task.supported_kinds)} "
                f"but cluster has no schedulable device of those kinds"
            )
        unbroken = [d for d in matches if self.breaker_filter(d.device_id)]
        return unbroken or matches

    def place(self, task: TaskSpec) -> Device:
        return self._meter_placement(self._pick(task))

    def _pick(self, task: TaskSpec) -> Device:
        candidates = self.candidates(task)
        if len(candidates) == 1:
            return candidates[0]
        if self.policy == SchedulingPolicy.ROUND_ROBIN:
            device = candidates[self._rr_cursor % len(candidates)]
            self._rr_cursor += 1
            return device
        if self.policy == SchedulingPolicy.LEAST_LOADED:
            return min(candidates, key=lambda d: (self.outstanding(d.device_id), d.device_id))
        if self.policy == SchedulingPolicy.LOCALITY:
            return self._place_locality(task, candidates)
        raise ValueError(f"unknown policy {self.policy}")

    def _meter_placement(self, device: Device) -> Device:
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_placements_total",
                "placement decisions by policy and chosen device",
                policy=self.policy.value,
                device=device.device_id,
            ).inc()
        return device

    def _place_locality(self, task: TaskSpec, candidates: List[Device]) -> Device:
        """Data-centric: minimize estimated bytes-over-links to gather inputs,
        then compute time, then queueing.

        With ``contention_aware`` the estimates price in each link's queued
        backlog and residual busy window, so a candidate behind a hot link
        loses to an equally-distant candidate on an idle path."""
        deps = task.dependencies
        contended = self.contention_aware

        def cost(device: Device) -> tuple:
            move_time = 0.0
            for ref in deps:
                if not self.ownership.contains(ref.object_id):
                    continue
                entry = self.ownership.entry(ref.object_id)
                if entry.state != ValueState.READY or not entry.locations:
                    continue
                # cheapest source copy
                best = min(
                    self.cluster.network.transfer_time_estimate(
                        self._node_data_endpoint(loc),
                        device.device_id,
                        entry.nbytes,
                        contended=contended,
                    )
                    for loc in sorted(entry.locations)
                )
                move_time += best
            compute_time = device.spec.scaled_duration(task.compute_cost)
            queue_penalty = self.outstanding(device.device_id) * device.spec.dispatch_overhead
            return (move_time + compute_time + queue_penalty, device.device_id)

        return min(candidates, key=cost)

    def _node_data_endpoint(self, node_id: str) -> str:
        return self.cluster.node(node_id).dominant_device.device_id

    # -- gang scheduling -------------------------------------------------------

    def place_gang(self, tasks: Sequence[TaskSpec]) -> Dict[str, Device]:
        """Place an SPMD gang onto *distinct* devices, all-or-nothing.

        Raises :class:`PlacementError` when the gang cannot fit.
        """
        if not tasks:
            return {}
        placements: Dict[str, Device] = {}
        taken: set[str] = set()
        # Greedy by most-constrained-first for determinism and better packing.
        for task in sorted(tasks, key=lambda t: (len(self.candidates(t)), t.task_id)):
            options = [d for d in self.candidates(task) if d.device_id not in taken]
            if not options:
                raise PlacementError(
                    f"gang {task.gang_group!r}: no distinct device left for {task.task_id}"
                )
            device = min(
                options, key=lambda d: (self.outstanding(d.device_id), d.device_id)
            )
            placements[task.task_id] = self._meter_placement(device)
            taken.add(device.device_id)
        return placements
