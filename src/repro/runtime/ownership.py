"""The heterogeneity-aware ownership table.

Ray's ownership protocol keeps, per object, the owning worker and the value
location.  Figure 3(2): "We make Ray's ownership table heterogeneity-aware
by adding a device ID and a handle to the device driver (DeviceID and
DeviceHandle)" — that is exactly the :class:`OwnershipEntry` here.  The
handle is opaque: in the real system it is a driver context, here an
integer token minted per (device, object).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

__all__ = ["ValueState", "OwnershipEntry", "OwnershipTable"]


class ValueState(enum.Enum):
    PENDING = "pending"  # producing task not finished
    READY = "ready"  # value materialized somewhere
    LOST = "lost"  # all copies gone (lineage or reliable cache must recover)


@dataclass
class OwnershipEntry:
    object_id: str
    owner: str  # worker/driver id that holds the ref (ownership protocol)
    task_id: str  # producing task (lineage edge)
    state: ValueState = ValueState.PENDING
    nbytes: int = 0
    locations: Set[str] = field(default_factory=set)  # node ids with a copy
    # -- the paper's extension (Figure 3) --
    device_id: Optional[str] = None  # device holding the primary copy
    device_handle: Optional[int] = None  # opaque handle to the device driver


class OwnershipTable:
    """Object directory + ownership metadata (lives in the GCS)."""

    def __init__(self) -> None:
        self._entries: Dict[str, OwnershipEntry] = {}
        self._handles = itertools.count(1)
        # dist-sanitizer hook: called as observer(op, object_id, old_state,
        # new_state, location_count) after every directory mutation.  None
        # (the default) keeps every mutator on its legacy path.
        self.observer: Optional[
            Callable[[str, str, Optional[str], Optional[str], int], None]
        ] = None

    # enum ``.name`` goes through a descriptor on every read; the observer
    # fires per directory mutation, so resolve names via a plain dict
    _STATE_NAMES = {state: state.name for state in ValueState}

    def _observe(
        self, op: str, entry: OwnershipEntry, old: Optional[ValueState]
    ) -> None:
        if self.observer is not None:
            names = self._STATE_NAMES
            self.observer(
                op,
                entry.object_id,
                None if old is None else names[old],
                names[entry.state],
                len(entry.locations),
            )

    def create(self, object_id: str, owner: str, task_id: str) -> OwnershipEntry:
        if object_id in self._entries:
            raise KeyError(f"object {object_id!r} already registered")
        entry = OwnershipEntry(object_id=object_id, owner=owner, task_id=task_id)
        self._entries[object_id] = entry
        self._observe("create", entry, None)
        return entry

    def entry(self, object_id: str) -> OwnershipEntry:
        entry = self._entries.get(object_id)
        if entry is None:
            raise KeyError(f"object {object_id!r} not in ownership table")
        return entry

    def contains(self, object_id: str) -> bool:
        return object_id in self._entries

    def mark_ready(
        self,
        object_id: str,
        node_id: str,
        nbytes: int,
        device_id: Optional[str] = None,
    ) -> OwnershipEntry:
        entry = self.entry(object_id)
        old = entry.state
        entry.state = ValueState.READY
        entry.nbytes = nbytes
        entry.locations.add(node_id)
        if device_id is not None:
            entry.device_id = device_id
            entry.device_handle = next(self._handles)
        self._observe("mark_ready", entry, old)
        return entry

    def add_location(self, object_id: str, node_id: str) -> None:
        entry = self.entry(object_id)
        old = entry.state
        entry.locations.add(node_id)
        if entry.state == ValueState.LOST:
            entry.state = ValueState.READY
        self._observe("add_location", entry, old)

    def drop_location(self, object_id: str, node_id: str) -> None:
        entry = self.entry(object_id)
        old = entry.state
        had = node_id in entry.locations
        entry.locations.discard(node_id)
        if not entry.locations and entry.state == ValueState.READY:
            entry.state = ValueState.LOST
        if had or entry.state is not old:
            self._observe("drop_location", entry, old)

    def drop_node(self, node_id: str) -> List[str]:
        """A node died: forget its copies; return newly-lost object ids."""
        lost = []
        for entry in self._entries.values():
            if node_id in entry.locations:
                old = entry.state
                entry.locations.discard(node_id)
                if not entry.locations and entry.state == ValueState.READY:
                    entry.state = ValueState.LOST
                    lost.append(entry.object_id)
                self._observe("drop_node", entry, old)
            if entry.device_id is not None and entry.device_id.startswith(node_id + "/"):
                entry.device_id = None
                entry.device_handle = None
        return lost

    def drop_device(self, device_id: str) -> List[str]:
        """A single device died while its node lived: invalidate the Figure 3
        extension columns for every entry whose primary copy sat on it.

        Location entries are node-granular, so the caller (the runtime, which
        knows which sibling stores survived) decides whether the node location
        itself must also be dropped; this method only severs the now-dangling
        ``device_id``/``device_handle`` so no one dereferences a driver handle
        into dead silicon.  Returns the invalidated object ids.
        """
        invalidated = []
        for entry in self._entries.values():
            if entry.device_id == device_id:
                entry.device_id = None
                entry.device_handle = None
                invalidated.append(entry.object_id)
                self._observe("drop_device", entry, entry.state)
        return invalidated

    def restore(
        self,
        object_id: str,
        owner: str,
        task_id: str,
        state: ValueState,
        nbytes: int,
        locations: Iterable[str],
        device_id: Optional[str] = None,
    ) -> OwnershipEntry:
        """Upsert an entry from a replicated snapshot (control-plane HA).

        Used by the failover path: the election winner replays its WAL
        replica and re-registration re-creates entries the log missed.
        A restore is a sanctioned directory reset, not a protocol step —
        the observer sees it as op ``"restore"`` and the state monitors
        treat it as re-seeding their tracked state.
        """
        entry = self._entries.get(object_id)
        if entry is None:
            entry = OwnershipEntry(object_id=object_id, owner=owner, task_id=task_id)
            self._entries[object_id] = entry
        entry.state = state
        entry.nbytes = nbytes
        entry.locations = set(locations)
        entry.device_id = device_id
        entry.device_handle = None if device_id is None else next(self._handles)
        self._observe("restore", entry, None)
        return entry

    def remove(self, object_id: str) -> None:
        """Forget an entry entirely (``free`` and WAL ``own_drop`` replay)."""
        self._entries.pop(object_id, None)

    def is_ready(self, object_id: str) -> bool:
        return self.contains(object_id) and self.entry(object_id).state == ValueState.READY

    def locations(self, object_id: str) -> List[str]:
        return sorted(self.entry(object_id).locations)

    def producing_task(self, object_id: str) -> str:
        return self.entry(object_id).task_id

    def objects(self) -> Iterable[OwnershipEntry]:
        return self._entries.values()

    def __len__(self) -> int:
        return len(self._entries)
