"""Export task timelines as Chrome tracing JSON (chrome://tracing).

Every finished task becomes a complete ("X") event: row = device, span =
[started, finished] in virtual microseconds, with the resolution stall as
an annotated argument.  Load the output in chrome://tracing or Perfetto to
see gang lock-steps, pipeline bubbles, and DPU serialization visually.
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from .runtime import ServerlessRuntime

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(runtime: ServerlessRuntime) -> List[dict]:
    """Build the trace-event list from a runtime's recorded timelines."""
    events: List[dict] = []
    for tl in runtime.timelines:
        node_id = tl.device_id.split("/")[0] if "/" in tl.device_id else tl.device_id
        events.append(
            {
                "name": tl.name,
                "cat": "task",
                "ph": "X",
                "ts": tl.started * 1e6,  # chrome tracing wants microseconds
                "dur": max((tl.finished - tl.started) * 1e6, 0.01),
                "pid": node_id,
                "tid": tl.device_id,
                "args": {
                    "task_id": tl.task_id,
                    "submitted_us": tl.submitted * 1e6,
                    "input_stall_us": tl.input_stall * 1e6,
                },
            }
        )
    return events


def write_chrome_trace(runtime: ServerlessRuntime, path_or_file: Union[str, IO]) -> int:
    """Write the trace; returns the number of events."""
    events = to_chrome_trace(runtime)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            json.dump(payload, fh)
    else:
        json.dump(payload, path_or_file)
    return len(events)
