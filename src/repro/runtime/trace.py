"""Export task timelines as Chrome tracing JSON (chrome://tracing).

Every finished task becomes a complete ("X") event: row = device, span =
[started, finished] in virtual microseconds, with the resolution stall as
an annotated argument.  Failure/recovery incidents from the runtime's
event log — node deaths, heartbeat suspicions, lineage replays, retries,
actor restarts, chaos injections — become instant ("i") events, so a
recovery storm is visible right next to the task spans it perturbs.  Load
the output in chrome://tracing or Perfetto.
"""

from __future__ import annotations

import json
from typing import IO, List, Union

from .runtime import ServerlessRuntime

__all__ = ["to_chrome_trace", "write_chrome_trace", "INSTANT_EVENT_KINDS"]

# event-log kinds worth a mark in the trace, and the category they get
INSTANT_EVENT_KINDS = {
    "node_dead": "failure",
    "node_alive": "recovery",
    "node_suspected": "failure",
    "node_unsuspected": "recovery",
    "lineage_replay": "recovery",
    "task_retry": "recovery",
    "task_timeout": "failure",
    "task_failed": "failure",
    "actor_dead": "failure",
    "actor_restart": "recovery",
    "speculate": "recovery",
    "detector_stalled": "failure",
    "chaos_node_crash": "chaos",
    "chaos_node_restart": "chaos",
    "chaos_partition": "chaos",
    "chaos_partition_heal": "chaos",
    "chaos_link_degraded": "chaos",
    "chaos_link_restored": "chaos",
    "chaos_message_loss": "chaos",
    "chaos_message_loss_end": "chaos",
    "chaos_straggler": "chaos",
    "chaos_straggler_end": "chaos",
}


def to_chrome_trace(
    runtime: ServerlessRuntime, spans: bool = False, counters: bool = False
) -> List[dict]:
    """Build the trace-event list from a runtime's recorded timelines.

    ``spans=True`` replaces the timeline-derived task slices with the full
    causal span graph (phase children and flow arrows included);
    ``counters=True`` appends every gauge sample as a counter ("C") event.
    """
    events: List[dict] = []
    if spans:
        from ..telemetry.chrome import spans_to_chrome_events

        events.extend(
            spans_to_chrome_events(runtime.telemetry.tracer.finished_spans())
        )
    else:
        for tl in runtime.timelines:
            node_id = tl.device_id.split("/")[0] if "/" in tl.device_id else tl.device_id
            events.append(
                {
                    "name": tl.name,
                    "cat": "task",
                    "ph": "X",
                    "ts": tl.started * 1e6,  # chrome tracing wants microseconds
                    "dur": max((tl.finished - tl.started) * 1e6, 0.01),
                    "pid": node_id,
                    "tid": tl.device_id,
                    "args": {
                        "task_id": tl.task_id,
                        "submitted_us": tl.submitted * 1e6,
                        "input_stall_us": tl.input_stall * 1e6,
                    },
                }
            )
    for ev in runtime.events:
        cat = INSTANT_EVENT_KINDS.get(ev.kind)
        if cat is None:
            continue
        detail = ev.as_dict()
        # pin node-scoped incidents to their node's row with process scope;
        # only genuinely cluster-wide incidents draw a global line
        pid = detail.get("node", "control-plane")
        scope = "p" if "node" in detail else "g"
        events.append(
            {
                "name": ev.kind,
                "cat": cat,
                "ph": "i",
                "s": scope,
                "ts": ev.time * 1e6,
                "pid": pid,
                "tid": cat,
                "args": {k: repr(v) for k, v in detail.items()},
            }
        )
    if counters:
        from ..telemetry.chrome import counters_to_chrome_events

        events.extend(counters_to_chrome_events(runtime.telemetry.registry))
    return events


def write_chrome_trace(
    runtime: ServerlessRuntime,
    path_or_file: Union[str, IO],
    spans: bool = False,
    counters: bool = False,
) -> int:
    """Write the trace; returns the number of events."""
    events = to_chrome_trace(runtime, spans=spans, counters=counters)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            json.dump(payload, fh)
    else:
        json.dump(payload, path_or_file)
    return len(events)
