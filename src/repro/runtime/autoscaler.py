"""Serverless autoscaling vs. reservation (experiment E6's machinery).

§1's serverless principle: "lower cost by offering a pay-as-you-go cost
model over a reservation-based one", and its critique: "the auto-scaling of
DSAs is almost non-existent".  This module models both provisioning styles
for any device kind (CPU pools and DSA pools alike):

* :class:`ReservedPool` — a fixed fleet billed for the whole run.
* :class:`AutoscalingPool` — grows on queue pressure after a cold-start
  delay and shrinks when idle, billed per provisioned second.

Jobs are (arrival_time, duration, kind) tuples from a workload trace; the
pools share the same DES so wait times and costs are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cluster.simtime import Signal, Simulator

__all__ = ["Job", "PoolStats", "ReservedPool", "AutoscalingPool", "run_trace"]


@dataclass(frozen=True)
class Job:
    job_id: int
    arrival: float
    duration: float
    kind: str = "cpu"  # "cpu", "gpu", ... — pools are per-kind


@dataclass
class PoolStats:
    completed: int = 0
    total_wait: float = 0.0
    max_wait: float = 0.0
    busy_seconds: float = 0.0
    provisioned_seconds: float = 0.0
    peak_workers: int = 0
    cold_starts: int = 0

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.completed if self.completed else 0.0

    @property
    def utilization(self) -> float:
        if self.provisioned_seconds == 0:
            return 0.0
        return self.busy_seconds / self.provisioned_seconds

    def cost(self, dollars_per_worker_second: float) -> float:
        return self.provisioned_seconds * dollars_per_worker_second


class _Worker:
    __slots__ = ("sim", "provisioned_at", "retired_at", "busy_until")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.provisioned_at = sim.now
        self.retired_at: Optional[float] = None
        self.busy_until = sim.now

    @property
    def idle(self) -> bool:
        return self.retired_at is None and self.busy_until <= self.sim.now


class _BasePool:
    """Shared queueing machinery: jobs queue FIFO, idle workers serve them."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.stats = PoolStats()
        self._workers: List[_Worker] = []
        self._queue: List[Tuple[Job, Signal]] = []

    @property
    def active_workers(self) -> List[_Worker]:
        return [w for w in self._workers if w.retired_at is None]

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self.active_workers:
            if worker.busy_until <= self.sim.now:
                return worker
        return None

    def submit(self, job: Job) -> Signal:
        """Enqueue a job; returns a signal fired at completion."""
        done = Signal(self.sim)
        self._queue.append((job, done))
        self.sim.schedule(0.0, self._drain)
        return done

    def _drain(self) -> None:
        while self._queue:
            worker = self._idle_worker()
            if worker is None:
                self._on_pressure(len(self._queue))
                return
            job, done = self._queue.pop(0)
            wait = self.sim.now - job.arrival
            self.stats.total_wait += wait
            self.stats.max_wait = max(self.stats.max_wait, wait)
            worker.busy_until = self.sim.now + job.duration
            self.stats.busy_seconds += job.duration

            def _finish(d=done, w=worker):
                self.stats.completed += 1
                d.succeed()
                self._drain()

            self.sim.schedule(job.duration, _finish)

    def _on_pressure(self, backlog: int) -> None:
        """Hook: called when jobs queue with no idle worker."""

    def finalize(self, end_time: float) -> None:
        """Close the books at ``end_time`` (bill provisioned time)."""
        for worker in self._workers:
            retired = worker.retired_at if worker.retired_at is not None else end_time
            self.stats.provisioned_seconds += retired - worker.provisioned_at
        self.stats.peak_workers = max(self.stats.peak_workers, len(self.active_workers))


class ReservedPool(_BasePool):
    """A fixed fleet, provisioned for the entire run."""

    def __init__(self, sim: Simulator, size: int):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        super().__init__(sim)
        for _ in range(size):
            self._workers.append(_Worker(sim))
        self.stats.peak_workers = size


class AutoscalingPool(_BasePool):
    """Scale out on backlog (after a cold start), scale in when idle."""

    def __init__(
        self,
        sim: Simulator,
        min_workers: int = 0,
        max_workers: int = 64,
        cold_start: float = 0.5,
        idle_timeout: float = 5.0,
    ):
        if min_workers < 0 or max_workers < max(min_workers, 1):
            raise ValueError("invalid autoscaling bounds")
        super().__init__(sim)
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.cold_start = cold_start
        self.idle_timeout = idle_timeout
        self._starting = 0
        for _ in range(min_workers):
            self._workers.append(_Worker(sim))

    def _on_pressure(self, backlog: int) -> None:
        capacity_incoming = self._starting
        needed = backlog - capacity_incoming
        room = self.max_workers - len(self.active_workers) - self._starting
        to_start = max(0, min(needed, room))
        for _ in range(to_start):
            self._starting += 1
            self.stats.cold_starts += 1
            self.sim.schedule(self.cold_start, self._worker_ready)

    def _worker_ready(self) -> None:
        self._starting -= 1
        worker = _Worker(self.sim)
        self._workers.append(worker)
        self.stats.peak_workers = max(self.stats.peak_workers, len(self.active_workers))
        self._drain()
        self._schedule_reap(worker)

    def _schedule_reap(self, worker: _Worker) -> None:
        def _reap():
            if worker.retired_at is not None:
                return
            if (
                worker.busy_until <= self.sim.now
                and not self._queue
                and len(self.active_workers) > self.min_workers
            ):
                worker.retired_at = self.sim.now
            else:
                self._schedule_reap(worker)

        self.sim.schedule(self.idle_timeout, _reap)


def run_trace(sim: Simulator, pool: _BasePool, jobs: List[Job]) -> PoolStats:
    """Feed a trace to a pool, run to completion, return closed stats."""
    done_signals = []
    for job in sorted(jobs, key=lambda j: (j.arrival, j.job_id)):
        sim.schedule(
            max(0.0, job.arrival - sim.now),
            lambda j=job: done_signals.append(pool.submit(j)),
        )
    sim.run()
    if any(not s.triggered for s in done_signals):
        raise RuntimeError("trace did not drain: jobs stuck in queue")
    pool.finalize(sim.now)
    return pool.stats
