"""Discrete-event simulation kernel.

This is the virtual-time substrate for the disaggregated data-center model.
The paper's performance claims are about where control messages and data
travel (trips through a DPU, pull vs push round-trips, bytes over the
fabric); a deterministic event-driven simulator with explicit cost models
reproduces those shapes without the authors' hardware.

The kernel is deliberately SimPy-like: model code is written as generator
*processes* that ``yield`` awaitables (:class:`Timeout`, :class:`Signal`,
:class:`AllOf`, ...) and the :class:`Simulator` interleaves them in virtual
time.  Determinism is guaranteed: ties in time are broken by a monotonically
increasing sequence number, never by wall-clock or hash order.

The event loop itself is the hardware at cluster scale (hundreds of millions
of events per benchmark run), so the hot path is built for throughput while
preserving the exact ``(time, seq)`` total order of the original
single-heap kernel:

* **bucket calendar** — timed events live in per-timestamp FIFO buckets
  (``dict[time] -> deque``) plus a heap of *distinct* times, so N events at
  T timestamps cost T heap operations instead of N.  Appends happen in
  ``seq`` order by construction, so each bucket is already totally ordered.
* **microtask ring** — zero-delay events (about half of all pushes:
  already-triggered awaits, resource grants, channel puts, process starts)
  bypass the calendar entirely and append to the *current instant's* FIFO.
* **same-instant batching** — advancing to an instant pops its whole bucket
  off the calendar in one heap operation and installs it as the ring;
  everything at that timestamp drains without re-touching the heap.
* **inline run-to-completion** — a process that yields an already-triggered
  awaitable resumes immediately, without a scheduler round trip, whenever
  the ring is empty and no trigger callback chain is active (i.e. exactly
  when the scheduled continuation would have been the very next event).
* **idle fast-forward** (opt-in, ``Simulator.fast_forward``) — periodic
  *poller* ticks created with :meth:`Simulator.poll_timeout` are deferred
  and coalesced onto the next regular event when nothing else is pending
  and no poller has demanded exact simulation (:meth:`Simulator.arm_poller`),
  so idle regions are skipped analytically instead of simulated
  tick-by-tick (the estimate-instead-of-simulate style of the data plane's
  ``transfer_time_estimate``).

Installing a schedule perturbation (:meth:`Simulator.set_perturbation`)
falls back to the legacy single-heap path, whose tie keys the perturbation
re-ranks; the bucket/ring features re-engage when it is cleared.  The
per-feature constructor switches exist so the ``BENCH_SIMCORE`` benchmark
can attribute throughput to each change; production code uses the all-on
default, which reproduces the legacy kernel's dispatch order bit-for-bit.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from functools import partial
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Signal",
    "AllOf",
    "AnyOf",
    "Resource",
    "Channel",
    "SimulationError",
    "Interrupt",
]


class SimulationError(RuntimeError):
    """Raised for structural errors in a simulation (e.g. deadlock)."""


class Interrupt(Exception):
    """Injected into a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Shared sentinel for "no callbacks".  Never mutated: add_callback replaces it
# with a fresh list on first append, remove_callback's .remove() on it raises
# ValueError (swallowed).  Saves a list allocation per awaitable and another
# per trigger — awaitables are the kernel's dominant allocation.
_NO_CALLBACKS: list = []

# The (send_value, throw_exc) argument pair that starts every process —
# shared so Process.__init__ allocates one tuple instead of two.
_START_ARGS = (None, None)

# Raw allocator for the awaitable fast factories below: skipping
# ``type.__call__`` (which routes through ``__init__`` dispatch) saves
# ~60ns per construction, and timeouts/signals are created once per
# timed wait and once per channel get respectively.
_new = object.__new__


def _push0(sim: "Simulator", item: tuple) -> None:
    """Append a zero-delay event ``(fn, args)`` to the current instant.

    The common-path subset of ``Simulator.schedule(0.0, ...)`` without the
    call-frame and vararg overhead; falls back to schedule() for the legacy
    heap, ring-off stages, and the rewound-ring corner.
    """
    if sim._fastpath:
        ring = sim._ring
        if ring:
            if sim._ring_time == sim._now:
                ring.append(item)
                return
        else:
            sim._ring_time = sim._now
            ring.append(item)
            return
    sim.schedule(0.0, item[0], *item[1])


def _push0_aw(sim: "Simulator", aw: "Awaitable") -> None:
    """Zero-delay enqueue of a pre-valued awaitable (see Timeout.__init__).

    The entry is the awaitable itself with ``aw.value`` already holding the
    trigger value; the dispatch loop fires it without a tuple or a bound
    method.  Falls back to an equivalent ``trigger`` event off the fast path.
    """
    if sim._fastpath:
        ring = sim._ring
        if ring:
            if sim._ring_time == sim._now:
                ring.append(aw)
                return
        else:
            sim._ring_time = sim._now
            ring.append(aw)
            return
    sim.schedule(0.0, aw.trigger, aw.value)


class Awaitable:
    """Base class for things a process may ``yield``.

    An awaitable is *triggered* at most once with a value; processes waiting
    on it are resumed with that value.
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks", "_waiter")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[["Awaitable"], None]] = _NO_CALLBACKS
        self._waiter: Optional["Process"] = None

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self.value = value
        # The sole-waiter fast lane: a process that yielded this awaitable
        # while it had no callbacks sits in ``_waiter`` instead of the
        # callback list (no list allocation, no _on_waited hop).  It runs
        # before any callbacks registered later — their registration order.
        w = self._waiter
        if w is not None:
            self._waiter = None
            if w._waiting_on is self:
                w._waiting_on = None
                if not self._callbacks:
                    # Tail position: after the step this trigger returns
                    # straight to its dispatcher, so resuming here is
                    # indistinguishable from being the next queued event —
                    # no depth bump, and the inline fast path stays open.
                    # Callbacks cannot appear during the step (add_callback
                    # on a triggered awaitable schedules instead), so this
                    # is the whole job.
                    w._step(value, None)
                    return
                sim = self.sim
                sim._trigger_depth += 1
                try:
                    w._step(value, None)
                finally:
                    sim._trigger_depth -= 1
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = _NO_CALLBACKS
            # Track callback-chain depth so Process._step can tell whether
            # returning hands control straight back to the dispatch loop
            # (inline resumption is only order-preserving at depth 0).
            sim = self.sim
            sim._trigger_depth += 1
            try:
                for cb in callbacks:
                    cb(self)
            finally:
                sim._trigger_depth -= 1

    def add_callback(self, cb: Callable[["Awaitable"], None]) -> None:
        if self.triggered:
            # Run on the event loop to preserve run-to-completion semantics.
            self.sim.schedule(0.0, lambda: cb(self))
        else:
            cbs = self._callbacks
            if cbs:
                cbs.append(cb)
            else:
                self._callbacks = [cb]

    def remove_callback(self, cb: Callable[["Awaitable"], None]) -> None:
        """Detach a not-yet-fired callback; missing callbacks are ignored."""
        try:
            self._callbacks.remove(cb)
        except ValueError:
            pass


class Timeout(Awaitable):
    """Fires after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Field init and the enqueue are inlined (no super().__init__, no
        # schedule() call): a timeout is created per timed wait and the
        # call frames are measurable.  This block mirrors Simulator.schedule
        # exactly — keep them in sync.
        self.sim = sim
        self.triggered = False
        self._callbacks = _NO_CALLBACKS
        self._waiter = None
        self.delay = delay
        if sim._fastpath:
            # Pre-valued enqueue: the queue entry is this awaitable itself
            # (``value`` already stored), not a ``(bound trigger, (value,))``
            # pair — two tuples and a bound-method allocation saved per
            # timed wait, and the dispatch loop fires it without the generic
            # trigger frame.  ``trigger(value)`` would store the same value,
            # so the dispatch is observably identical.
            self.value = value
            now = sim._now
            t = now + delay
            if t == now:
                ring = sim._ring
                if ring:
                    if sim._ring_time == now:
                        ring.append(self)
                        return
                    # rewound-ring corner: route via the calendar below
                else:
                    sim._ring_time = now
                    ring.append(self)
                    return
            buckets = sim._buckets
            lst = buckets.get(t)
            if lst is None:
                buckets[t] = self
                heapq.heappush(sim._times, t)
            elif type(lst) is deque:
                lst.append(self)
            else:
                buckets[t] = deque((lst, self))
        else:
            self.value = None
            sim.schedule(delay, self.trigger, value)


def _make_timeout(sim: "Simulator", delay: float, value: Any = None) -> Timeout:
    """Fast construction path for :meth:`Simulator.timeout`.

    Mirror of ``Timeout.__init__`` reached through ``object.__new__`` so
    the call skips ``type.__call__`` — keep the two bodies in sync.
    Direct ``Timeout(sim, ...)`` construction still works identically.
    """
    if delay < 0:
        raise ValueError(f"negative timeout delay: {delay}")
    self = _new(Timeout)
    self.sim = sim
    self.triggered = False
    self._callbacks = _NO_CALLBACKS
    self._waiter = None
    self.delay = delay
    if sim._fastpath:
        self.value = value
        now = sim._now
        t = now + delay
        if t == now:
            ring = sim._ring
            if ring:
                if sim._ring_time == now:
                    ring.append(self)
                    return self
                # rewound-ring corner: route via the calendar below
            else:
                sim._ring_time = now
                ring.append(self)
                return self
        buckets = sim._buckets
        lst = buckets.get(t)
        if lst is None:
            buckets[t] = self
            heapq.heappush(sim._times, t)
        elif type(lst) is deque:
            lst.append(self)
        else:
            buckets[t] = deque((lst, self))
    else:
        self.value = None
        sim.schedule(delay, self.trigger, value)
    return self


class Signal(Awaitable):
    """A one-shot event that model code triggers explicitly.

    Multiple processes may wait on the same signal; all are resumed with the
    signalled value.  Use :meth:`succeed` from model code.
    """

    # Signals are the single hottest allocation in transfer-heavy runs
    # (every link grant and every chunk arrival is one); an empty __slots__
    # keeps them dict-free like the other awaitables.
    __slots__ = ()

    def succeed(self, value: Any = None) -> None:
        self.trigger(value)

    @property
    def ok(self) -> bool:
        return self.triggered


class AllOf(Awaitable):
    """Triggered when every child awaitable has triggered.

    The value is the list of child values in the given order.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, sim: "Simulator", children: Iterable[Awaitable]):
        super().__init__(sim)
        self._children = list(children)
        self._pending = len(self._children)
        if self._pending == 0:
            sim.schedule(0.0, self.trigger, [])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, _child: Awaitable) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.trigger([c.value for c in self._children])


class AnyOf(Awaitable):
    """Triggered when the first child awaitable triggers.

    The value is ``(index, value)`` of the first child to fire.

    Losing children are detached as soon as the winner fires: a long-lived
    child (a breaker probe signal, an HA beacon) must not pin a dead
    combinator — and the closure graph hanging off it — for its whole
    lifetime.
    """

    __slots__ = ("_children", "_child_cbs")

    def __init__(self, sim: "Simulator", children: Iterable[Awaitable]):
        super().__init__(sim)
        self._children = list(children)
        if not self._children:
            raise ValueError("AnyOf requires at least one child")
        cbs: List[Tuple[Awaitable, Callable]] = []
        for i, child in enumerate(self._children):
            cb = lambda c, i=i: self._on_child(i, c)  # noqa: E731
            cbs.append((child, cb))
            child.add_callback(cb)
        self._child_cbs = cbs

    def _on_child(self, index: int, child: Awaitable) -> None:
        if not self.triggered:
            self.trigger((index, child.value))
            # The race is decided: withdraw our callback from every loser so
            # they no longer reference this combinator.  (A loser that was
            # already triggered has its callback in flight as a scheduled
            # event; it lands on a triggered AnyOf and no-ops.)
            for other, cb in self._child_cbs:
                if other is not child and not other.triggered:
                    other.remove_callback(cb)
            self._child_cbs = []


class Process(Awaitable):
    """A running generator; itself awaitable (fires when the generator ends).

    The value is the generator's return value (``StopIteration.value``).
    """

    __slots__ = (
        "name",
        "_gen",
        "_send",
        "_waiting_on",
        "_interrupted",
        "_step_cb",
        "_wait_cb",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        # Field init inlined (see Timeout): a process is born per message
        # send and per task attempt, so creation is on the hot path.
        self.sim = sim
        self.triggered = False
        self.value = None
        self._callbacks = _NO_CALLBACKS
        self._waiter = None
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._send = gen.send
        self._waiting_on: Optional[Awaitable] = None
        self._interrupted: Optional[Interrupt] = None
        # Cache the bound methods the hot path hands out once per yield —
        # a process yields thousands of times, each a fresh bound-method
        # allocation otherwise.
        self._step_cb = step = self._step
        # _wait_cb is lazily bound on the first wait that cannot use the
        # _waiter slot (the awaitable already has a waiter or callbacks) —
        # most processes never need it.
        self._wait_cb = None
        # The start event, with _push0's fast path inlined (a process is
        # born per message send; the helper frame is measurable).
        if sim._fastpath:
            ring = sim._ring
            if ring:
                if sim._ring_time == sim._now:
                    ring.append((step, _START_ARGS))
                    return
            else:
                sim._ring_time = sim._now
                ring.append((step, _START_ARGS))
                return
        sim.schedule(0.0, step, None, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            return
        self._interrupted = Interrupt(cause)
        # Detach from whatever it was waiting on; resume immediately.
        self.sim.schedule(0.0, self._maybe_deliver_interrupt)

    def _maybe_deliver_interrupt(self) -> None:
        if self.triggered or self._interrupted is None:
            return
        exc, self._interrupted = self._interrupted, None
        self._waiting_on = None
        self._step(None, exc)

    def _on_waited(self, awaited: Awaitable) -> None:
        # Stale wake-up after an interrupt already resumed us.
        if self._waiting_on is not awaited:
            return
        self._waiting_on = None
        self._step(awaited.value, None)

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        send = self._send
        while True:
            try:
                if throw_exc is not None:
                    awaited = self._gen.throw(throw_exc)
                else:
                    awaited = send(send_value)
            except StopIteration as stop:
                self.trigger(stop.value)
                return
            except Interrupt:
                # Process chose not to handle its interrupt: treat as clean exit.
                self.trigger(None)
                return
            if not isinstance(awaited, Awaitable):
                raise SimulationError(
                    f"process {self.name!r} yielded {awaited!r}, expected an Awaitable"
                )
            if awaited.triggered:
                # Fast path: resume inline instead of a schedule/dispatch
                # round trip — but only when the scheduled continuation
                # would provably have been the very next event: the current
                # instant's ring is empty (the calendar cannot hold events
                # at ``now``) and no trigger callback chain is on the stack
                # (we were dispatched directly by the run loop, so
                # returning would hand control straight back to it).
                sim = self.sim
                if sim._inline_ok and not sim._ring and sim._trigger_depth == 0:
                    sim.inline_steps += 1
                    send_value = awaited.value
                    throw_exc = None
                    continue
                _push0(sim, (self._step_cb, (awaited.value, None)))
            else:
                self._waiting_on = awaited
                if awaited._waiter is None and not awaited._callbacks:
                    awaited._waiter = self
                else:
                    cb = self._wait_cb
                    if cb is None:
                        cb = self._wait_cb = self._on_waited
                    awaited.add_callback(cb)
            return


class Resource:
    """A counted resource (execution slots on a device, NIC queues, ...).

    ``request()`` returns an awaitable that fires when a slot is granted; the
    holder must call ``release()`` exactly once.  FIFO granting keeps the
    model deterministic.  A grant that will never be consumed (its requester
    was interrupted) must be withdrawn with :meth:`cancel`, otherwise the
    slot leaks — :meth:`use` does this for its own request.
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_queue")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Signal] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Awaitable:
        grant = Signal(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            _push0_aw(self.sim, grant)
        else:
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            _push0_aw(self.sim, grant)
        else:
            self._in_use -= 1

    def cancel(self, grant: Awaitable) -> None:
        """Withdraw a :meth:`request` whose grant will never be consumed.

        A still-queued grant is simply removed.  A grant that was already
        issued — the slot is held, whether or not the ``succeed`` event has
        delivered yet — is returned via :meth:`release`, handing the slot to
        the next waiter.  (The orphaned ``succeed`` may still fire; it
        triggers a signal nobody waits on and touches no resource state.)
        """
        try:
            self._queue.remove(grant)
            return
        except ValueError:
            pass
        self.release()

    def use(self, duration: float) -> Process:
        """Convenience: hold one slot for ``duration`` virtual time.

        Interrupt-safe: an interrupt that lands while the slot request is
        still queued (or granted but undelivered) cancels the request, so
        the slot is never leaked into a process that already unwound.
        """

        def _use() -> Generator:
            grant = self.request()
            try:
                yield grant
            except BaseException:
                # Interrupted (or closed) before the grant was consumed:
                # give the slot back / withdraw the queued request.
                self.cancel(grant)
                raise
            try:
                yield Timeout(self.sim, duration)
            finally:
                self.release()

        return self.sim.process(_use())


class Channel:
    """An unbounded FIFO message channel between processes."""

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            # Pre-valued hand-off, _push0_aw inlined: every message delivery
            # is one of these (see Timeout.__init__ for the entry format).
            getter.value = item
            sim = self.sim
            if sim._fastpath:
                ring = sim._ring
                if ring:
                    if sim._ring_time == sim._now:
                        ring.append(getter)
                        return
                else:
                    sim._ring_time = sim._now
                    ring.append(getter)
                    return
            sim.schedule(0.0, getter.trigger, item)
        else:
            self._items.append(item)

    def get(self) -> Awaitable:
        sim = self.sim
        # Inline Signal construction (mirror of Awaitable.__init__): one
        # signal per get() is the channel's dominant allocation.
        sig = _new(Signal)
        sig.sim = sim
        sig.triggered = False
        sig.value = None
        sig._callbacks = _NO_CALLBACKS
        sig._waiter = None
        if self._items:
            # Pre-valued hand-off, _push0_aw inlined (burst drain: items
            # queued while the consumer was busy).
            sig.value = self._items.popleft()
            if sim._fastpath:
                ring = sim._ring
                if ring:
                    if sim._ring_time == sim._now:
                        ring.append(sig)
                        return sig
                else:
                    sim._ring_time = sim._now
                    ring.append(sig)
                    return sig
            sim.schedule(0.0, sig.trigger, sig.value)
        else:
            self._getters.append(sig)
        return sig

    def cancel_get(self, sig: Awaitable) -> None:
        """Withdraw a :meth:`get` whose consumer unwound (was interrupted).

        A still-waiting getter is removed from the queue.  A getter whose
        item was already dispatched (or delivered) puts the item back at the
        *head* of the channel so FIFO order is preserved for the next get.
        """
        try:
            self._getters.remove(sig)
            return
        except ValueError:
            pass
        if sig.triggered:
            self._items.appendleft(sig.value)
        # else: the succeed event is in flight; when it lands the item sits
        # in sig.value of a signal nobody waits on — callers cancelling an
        # in-flight get should do so via a zero-delay event of their own,
        # after the succeed has landed (cancel_get is idempotent until then).


@dataclass(order=True, slots=True)
class _ScheduledEvent:
    time: float
    # a bare int normally; ``(rank, int)`` when a perturbation is installed
    # (both orderings are total because the int component stays unique)
    seq: Any
    fn: Callable = field(compare=False)
    args: tuple = field(compare=False, default=())


class Simulator:
    """The event loop: a total order of timestamped callbacks.

    Two queue tiers carry the order ``(time, seq)``:

    * the **microtask ring** holds the current instant's events in FIFO
      (= ``seq``) order; zero-delay schedules append here directly;
    * the **bucket calendar** holds future instants as per-timestamp FIFO
      deques plus a heap of distinct times; advancing to an instant promotes
      its whole bucket to the ring in one heap pop.

    The legacy single-heap path remains for schedule perturbations (their
    re-ranked tie keys need a real priority queue) and as the benchmark
    baseline (``bucket_queue=False``).  The feature switches are cumulative:
    ``instant_batching`` requires ``bucket_queue`` and ``microtask_ring``
    requires ``instant_batching``.
    """

    def __init__(
        self,
        *,
        bucket_queue: bool = True,
        instant_batching: bool = True,
        microtask_ring: bool = True,
    ) -> None:
        # legacy heap (perturbation path / attribution baseline)
        self._queue: list[_ScheduledEvent] = []
        # two-tier fast path
        self._ring: deque = deque()
        self._ring_time = 0.0
        self._buckets: dict = {}
        self._times: list = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        # schedule perturbation hook: maps (seq, delay) -> (rank, delay).
        # ``rank`` re-keys ties at one instant; ``delay`` may be stretched
        # (never shrunk below zero) to jitter delivery within causal
        # constraints.  None (the default) is the bit-for-bit legacy path.
        self._perturb: Optional[Callable[[int, float], tuple]] = None
        self._trigger_depth = 0
        # -- idle fast-forward (opt-in; see poll_timeout/arm_poller) ---------
        self.fast_forward = False
        self._ff_armed = 0  # pollers demanding exact tick-by-tick simulation
        self._ff_listeners: List[Callable[[float, float], None]] = []
        self._poll_counts: dict = {}  # instant -> deferrable poll ticks in it
        self.ff_jumps = 0  # idle regions skipped analytically
        self.ff_ticks_deferred = 0  # poll ticks coalesced onto a jump target
        # -- counters ---------------------------------------------------------
        self.inline_steps = 0  # process resumptions that skipped the queue
        self._dispatched = 0  # queue entries fired (flushed per instant)
        self._opt_bucket = True
        self._opt_batch = True
        self._opt_ring = True
        self._use_heap = False
        self._inline_ok = True
        # _fastpath gates the inlined enqueue blocks (Timeout.__init__,
        # _push0): ring discipline active and no perturbation installed.
        self._fastpath = True
        self.configure(
            bucket_queue=bucket_queue,
            instant_batching=instant_batching,
            microtask_ring=microtask_ring,
        )
        # Instance attributes shadow the factory methods below with
        # C-dispatched partials: model code calls sim.timeout()/sim.process()
        # tens of thousands of times per run and the pure-Python wrapper
        # frame is measurable.  The methods stay as the documented API.
        self.timeout = partial(_make_timeout, self)
        self.process = partial(Process, self)
        self.signal = partial(Signal, self)

    # -- configuration ---------------------------------------------------------

    def configure(
        self,
        *,
        bucket_queue: Optional[bool] = None,
        instant_batching: Optional[bool] = None,
        microtask_ring: Optional[bool] = None,
    ) -> None:
        """Flip kernel feature switches (benchmark attribution knobs).

        Must be called while the simulator is idle: entries authored under
        one queue discipline cannot be re-keyed into another.
        """
        if self.pending_events():
            raise SimulationError(
                "kernel features must be configured on an idle simulator"
            )
        if bucket_queue is not None:
            self._opt_bucket = bucket_queue
        if instant_batching is not None:
            self._opt_batch = instant_batching
        if microtask_ring is not None:
            self._opt_ring = microtask_ring
        if self._opt_batch and not self._opt_bucket:
            raise ValueError("instant_batching requires bucket_queue")
        if self._opt_ring and not self._opt_batch:
            raise ValueError("microtask_ring requires instant_batching")
        self._use_heap = self._perturb is not None or not self._opt_bucket
        self._inline_ok = self._opt_ring and self._perturb is None
        self._fastpath = self._opt_ring and not self._use_heap

    @property
    def now(self) -> float:
        return self._now

    def set_perturbation(
        self, perturb: Optional[Callable[[int, float], tuple]]
    ) -> None:
        """Install (or clear) a schedule perturbation.

        Must be called while the event queue is empty: mixing plain-int and
        ``(rank, int)`` tie keys in one heap would make entries incomparable.
        While installed, the kernel falls back to the legacy single-heap
        path (the perturbation re-ranks its tie keys); clearing it restores
        the configured bucket/ring fast path.
        """
        if self.pending_events():
            raise SimulationError(
                "a schedule perturbation must be installed on an idle simulator"
            )
        self._perturb = perturb
        self._use_heap = perturb is not None or not self._opt_bucket
        self._inline_ok = self._opt_ring and perturb is None
        self._fastpath = self._opt_ring and not self._use_heap

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        if self._use_heap:
            # Only the heap path materializes seq as a tie key; the fast
            # structures below are FIFO by construction, so they carry the
            # (time, seq) order without numbering each entry (dispatch
            # counting lives in the run loops — see events_executed).
            self._seq += 1
            if self._perturb is None:
                key: Any = self._seq
            else:
                rank, delay = self._perturb(self._seq, delay)
                key = (rank, self._seq)
            heapq.heappush(
                self._queue, _ScheduledEvent(self._now + delay, key, fn, args)
            )
            return
        now = self._now
        t = now + delay
        if t == now and self._opt_ring:
            # Zero-delay (or underflowed-to-now) event: it belongs to the
            # current instant and its seq is larger than everything already
            # pending there, so a FIFO append preserves (time, seq) order.
            ring = self._ring
            if ring:
                if self._ring_time == now:
                    ring.append((fn, args))
                    return
                # pathological: virtual time was rewound under a pending
                # ring (run(until=past)); fall through to the calendar
            else:
                self._ring_time = now
                ring.append((fn, args))
                return
        # A bucket is a bare (fn, args) tuple while it holds one event —
        # most distinct timestamps never see a second — and becomes a FIFO
        # deque on the first collision.
        buckets = self._buckets
        lst = buckets.get(t)
        if lst is None:
            buckets[t] = (fn, args)
            heapq.heappush(self._times, t)
        elif type(lst) is deque:
            lst.append((fn, args))
        else:
            buckets[t] = deque((lst, (fn, args)))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn`` at an *absolute* virtual time.

        Chaos schedules are authored in absolute time ("crash server1 at
        t=0.5"); this clamps events whose time already passed to "now"
        rather than raising, so a schedule can be attached mid-run.
        """
        self.schedule(max(0.0, when - self._now), fn, *args)

    # -- idle fast-forward -----------------------------------------------------

    def poll_timeout(self, delay: float, value: Any = None) -> Awaitable:
        """A timeout the idle fast-forward may defer.

        Semantically identical to :meth:`timeout` — with ``fast_forward``
        off (the default) it *is* the same scheduled trigger, bit-for-bit.
        With ``fast_forward`` on, the tick is additionally marked as a
        *poller* wake-up: when an instant contains only poller ticks, no
        poller is armed, and a later regular event exists, the kernel jumps
        straight to that event and fires the skipped ticks once, there.
        Callers promise the tick's handler is a pure observation whose
        skipped rounds can be accounted analytically (fast-forward
        listeners run at each jump for exactly that purpose).
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        tick = Signal(self)
        if self.fast_forward and not self._use_heap:
            now = self._now
            t = now + delay
            if t == now and self._opt_ring:
                # degenerate interval: never deferrable, plain ring event
                ring = self._ring
                if ring and self._ring_time == now or not ring:
                    if not ring:
                        self._ring_time = now
                    ring.append((tick.trigger, (value,)))
                    return tick
            lst = self._buckets.get(t)
            if lst is None:
                self._buckets[t] = (tick.trigger, (value,))
                heapq.heappush(self._times, t)
            elif type(lst) is deque:
                lst.append((tick.trigger, (value,)))
            else:
                self._buckets[t] = deque((lst, (tick.trigger, (value,))))
            self._poll_counts[t] = self._poll_counts.get(t, 0) + 1
        else:
            self.schedule(delay, tick.trigger, value)
        return tick

    def arm_poller(self) -> None:
        """Demand exact tick-by-tick simulation of poller wake-ups.

        Refcounted; while any poller is armed, fast-forward never skips.
        Arm whenever an analytic account of skipped ticks would be wrong:
        chaos is active, suspicion is pending, a liveness protocol is load-
        bearing.
        """
        self._ff_armed += 1

    def disarm_poller(self) -> None:
        if self._ff_armed <= 0:
            raise SimulationError("disarm_poller without a matching arm_poller")
        self._ff_armed -= 1

    @property
    def pollers_armed(self) -> int:
        return self._ff_armed

    def add_fast_forward_listener(self, cb: Callable[[float, float], None]) -> None:
        """Register ``cb(old_now, new_now)`` to run at every idle jump.

        Listeners apply the analytic model of the skipped region (e.g. the
        failure detector credits heartbeats that idle, healthy raylets
        would have delivered).
        """
        self._ff_listeners.append(cb)

    def _try_fast_forward(self, until: Optional[float]) -> bool:
        """Defer leading pure-poller instants onto the next regular event.

        Returns True when a jump happened (deferred ticks installed as the
        ring at the jump target); the caller re-enters its loop.
        """
        times = self._times
        buckets = self._buckets
        counts = self._poll_counts
        deferred: List[tuple] = []
        popped: List[Tuple[float, Any, int]] = []
        while times:
            t0 = times[0]
            n = counts.get(t0)
            if not n:
                break  # a regular instant: stop here
            lst = buckets[t0]
            size = len(lst) if type(lst) is deque else 1
            if n != size:
                break  # a regular event shares this instant: stop here
            if until is not None and t0 > until:
                break  # past the horizon; run() will stop before it anyway
            heapq.heappop(times)
            del buckets[t0]
            del counts[t0]
            popped.append((t0, lst, n))
            if type(lst) is deque:
                deferred.extend(lst)
            else:
                deferred.append(lst)
        if not deferred:
            return False
        if times:
            target: Optional[float] = times[0]
        elif until is not None:
            target = until
        else:
            # Nothing to land on (only pollers remain, no horizon): put the
            # instants back and simulate them normally.
            for t0, lst, n in reversed(popped):
                buckets[t0] = lst
                counts[t0] = n
                heapq.heappush(times, t0)
            return False
        if until is not None and target > until:
            target = until
        old = self._now
        self._now = target
        self.ff_jumps += 1
        self.ff_ticks_deferred += len(deferred)
        for cb in self._ff_listeners:
            cb(old, target)
        self._ring = deque(deferred)
        self._ring_time = target
        return True

    # -- factories -------------------------------------------------------------

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def signal(self) -> Signal:
        return Signal(self)

    def all_of(self, children: Iterable[Awaitable]) -> AllOf:
        return AllOf(self, children)

    def any_of(self, children: Iterable[Awaitable]) -> AnyOf:
        return AnyOf(self, children)

    # -- introspection ---------------------------------------------------------

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None when idle."""
        if self._use_heap:
            return self._queue[0].time if self._queue else None
        best: Optional[float] = self._ring_time if self._ring else None
        if self._times:
            t = self._times[0]
            if best is None or t < best:
                best = t
        return best

    def pending_events(self) -> int:
        """Events scheduled but not yet dispatched (across all tiers)."""
        n = len(self._ring) + len(self._queue)
        if self._buckets:
            n += sum(
                len(b) if type(b) is deque else 1 for b in self._buckets.values()
            )
        return n

    def events_executed(self) -> int:
        """Total events dispatched so far, including inline resumptions.

        The run loops count dispatches locally and flush the tally once per
        instant (fast-path enqueues do not number entries — FIFO structures
        carry the order), so mid-run reads may lag by the instant currently
        draining; at run boundaries the count is exact.
        """
        return self._dispatched + self.inline_steps

    # -- the event loop --------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time passes ``until``.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if self._use_heap:
                return self._run_heap(until)
            if self._opt_batch:
                return self._run_batched(until)
            return self._run_unbatched(until)
        finally:
            self._running = False

    def _run_heap(self, until: Optional[float]) -> float:
        """The legacy single-heap loop (perturbations / baseline)."""
        queue = self._queue
        heappop = heapq.heappop
        while queue:
            if until is not None and queue[0].time > until:
                self._now = until
                break
            ev = heappop(queue)
            self._now = ev.time
            self._dispatched += 1
            ev.fn(*ev.args)
        return self._now

    def _run_batched(self, until: Optional[float]) -> float:
        """The fast path: ring + bucket calendar with same-instant batching."""
        times = self._times
        buckets = self._buckets
        pc = self._poll_counts  # mutated in place everywhere: safe to hoist
        heappop = heapq.heappop
        opt_ring = self._opt_ring
        tup = tuple  # local: checked once per dispatched event
        # ``t > horizon`` is never true for an unbounded run, so the horizon
        # branches below (which read the original ``until``) are only
        # reachable when until is not None — one float compare per instant
        # instead of a None check plus a compare.
        horizon = math.inf if until is None else until
        nd = 0  # dispatches since the last flush (see events_executed)
        while True:
            if nd:
                self._dispatched += nd
                nd = 0
            ring = self._ring
            if ring:
                # events pending at the current instant (left over from a
                # previous run() or pushed between runs)
                t = self._ring_time
                if times and times[0] < t:
                    # pathological: time was rewound under a pending ring —
                    # the calendar holds an earlier instant; drain it first
                    # without touching the ring (cold path).
                    t = times[0]
                    if t > horizon:
                        self._now = until
                        break
                    self._now = t
                    heappop(times)
                    lst = buckets.pop(t)
                    if pc:
                        pc.pop(t, None)
                    if type(lst) is deque:
                        while lst:
                            e = lst.popleft()
                            nd += 1
                            if type(e) is tup:
                                e[0](*e[1])
                            else:
                                e.trigger(e.value)
                    else:
                        nd += 1
                        if type(lst) is tup:
                            lst[0](*lst[1])
                        else:
                            lst.trigger(lst.value)
                    continue
                if t > horizon:
                    self._now = until
                    break
                self._now = t
                pop = ring.popleft  # ring identity is stable within a drain
                while ring:
                    e = pop()
                    nd += 1
                    if type(e) is tup:
                        e[0](*e[1])
                    else:
                        # Pre-valued awaitable entry (see Timeout.__init__):
                        # the sole-waiter trigger inlined — keep in sync
                        # with Awaitable.trigger.  Tail position: no depth
                        # bump (cf. the trigger fast lane).
                        w = e._waiter
                        if w is not None and not e._callbacks and not e.triggered:
                            e.triggered = True
                            e._waiter = None
                            if w._waiting_on is e:
                                w._waiting_on = None
                                w._step(e.value, None)
                        else:
                            e.trigger(e.value)
            elif times:
                if (
                    self.fast_forward
                    and pc
                    and self._ff_armed == 0
                    and self._try_fast_forward(until)
                ):
                    continue
                t = times[0]
                if t > horizon:
                    self._now = until
                    break
                self._now = t
                heappop(times)
                lst = buckets.pop(t)
                if pc:
                    pc.pop(t, None)
                if type(lst) is tup:
                    # singleton instant: dispatch directly; the ring stays
                    # empty so zero-delay follow-ups (and the inline fast
                    # path) behave exactly as with a promoted 1-item ring
                    nd += 1
                    lst[0](*lst[1])
                elif type(lst) is not deque:
                    nd += 1
                    # singleton pre-valued awaitable: sole-waiter trigger
                    # inlined (see the ring drain above; keep in sync)
                    w = lst._waiter
                    if w is not None and not lst._callbacks and not lst.triggered:
                        lst.triggered = True
                        lst._waiter = None
                        if w._waiting_on is lst:
                            w._waiting_on = None
                            w._step(lst.value, None)
                    else:
                        lst.trigger(lst.value)
                elif opt_ring:
                    # promote the whole bucket to the ring: everything at
                    # this instant drains without re-touching the heap, and
                    # zero-delay schedules append behind it in seq order
                    self._ring = ring = lst
                    self._ring_time = t
                    pop = ring.popleft
                    while ring:
                        e = pop()
                        nd += 1
                        if type(e) is tup:
                            e[0](*e[1])
                        else:
                            w = e._waiter
                            if (
                                w is not None
                                and not e._callbacks
                                and not e.triggered
                            ):
                                e.triggered = True
                                e._waiter = None
                                if w._waiting_on is e:
                                    w._waiting_on = None
                                    w._step(e.value, None)
                            else:
                                e.trigger(e.value)
                else:
                    while lst:
                        e = lst.popleft()
                        nd += 1
                        if type(e) is tup:
                            e[0](*e[1])
                        else:
                            e.trigger(e.value)
            else:
                break
        if nd:
            self._dispatched += nd
        return self._now

    def _run_unbatched(self, until: Optional[float]) -> float:
        """Bucket calendar without batching: re-consult the heap per event."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            if until is not None and t > until:
                self._now = until
                break
            self._now = t
            lst = buckets[t]
            if type(lst) is deque:
                e = lst.popleft()
                if not lst:
                    del buckets[t]
                    heapq.heappop(times)
                    if self._poll_counts:
                        self._poll_counts.pop(t, None)
            else:
                e = lst
                del buckets[t]
                heapq.heappop(times)
                if self._poll_counts:
                    self._poll_counts.pop(t, None)
            self._dispatched += 1
            if type(e) is tuple:
                e[0](*e[1])
            else:
                # pre-valued awaitable entry (unreachable while the fast
                # path is off, but kept equivalent for safety)
                e.trigger(e.value)
        return self._now

    def run_until_complete(self, proc: Process, limit: float = math.inf) -> Any:
        """Run until ``proc`` finishes; raise if the queue drains first."""
        self.run(until=None if limit == math.inf else limit)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not complete (deadlock or time limit)"
            )
        return proc.value
