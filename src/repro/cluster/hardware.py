"""Device models for the disaggregated data center.

Each device is characterized by the handful of parameters the paper's
arguments turn on: how fast it computes (relative throughput), how much
memory it has, how long dispatching a task onto it takes, and how many
tasks it can run at once.  Absolute values are calibrated to public
datasheets only loosely — the experiments compare *shapes*, not silicon.

Units throughout the cluster package: seconds and bytes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

from .simtime import Resource, Simulator

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "Device",
    "CPU_SERVER_SPEC",
    "GPU_SPEC",
    "FPGA_SPEC",
    "DPU_SPEC",
    "MEMORY_BLADE_SPEC",
    "KB",
    "MB",
    "GB",
    "USEC",
    "MSEC",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

USEC = 1e-6
MSEC = 1e-3


class DeviceKind(enum.Enum):
    """The device taxonomy of Figure 2/3."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    DPU = "dpu"
    MEMORY_BLADE = "memory_blade"

    @property
    def is_accelerator(self) -> bool:
        return self in (DeviceKind.GPU, DeviceKind.FPGA)


@dataclass(frozen=True)
class DeviceSpec:
    """Static parameters of a device model.

    ``compute_scale`` is relative throughput for compute work: a task whose
    nominal cost is ``c`` seconds of CPU work runs in ``c / compute_scale``
    on this device (for op kinds the device supports).

    ``dispatch_overhead`` is the control-plane cost of launching one task on
    the device — the quantity Gen-2 attacks for short-lived ops.
    """

    kind: DeviceKind
    name: str
    compute_scale: float
    memory_bytes: int
    memory_bandwidth: float  # bytes/sec, local memory
    dispatch_overhead: float  # seconds per task launch
    slots: int = 1  # concurrent task slots

    def scaled_duration(self, cpu_seconds: float) -> float:
        """Virtual compute time for work costing ``cpu_seconds`` on a CPU."""
        if cpu_seconds < 0:
            raise ValueError(f"negative compute cost: {cpu_seconds}")
        return cpu_seconds / self.compute_scale

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        return replace(self, **kwargs)


# Default catalog.  compute_scale: CPU core = 1.0.
CPU_SERVER_SPEC = DeviceSpec(
    kind=DeviceKind.CPU,
    name="cpu-server",
    compute_scale=1.0,
    memory_bytes=64 * GB,
    memory_bandwidth=25 * GB,
    dispatch_overhead=50 * USEC,
    slots=16,
)

GPU_SPEC = DeviceSpec(
    kind=DeviceKind.GPU,
    name="gpu",
    compute_scale=40.0,
    memory_bytes=40 * GB,
    memory_bandwidth=1500 * GB,
    dispatch_overhead=20 * USEC,
    slots=4,
)

FPGA_SPEC = DeviceSpec(
    kind=DeviceKind.FPGA,
    name="fpga",
    compute_scale=12.0,
    memory_bytes=16 * GB,
    memory_bandwidth=460 * GB,
    dispatch_overhead=15 * USEC,
    slots=2,
)

DPU_SPEC = DeviceSpec(
    kind=DeviceKind.DPU,
    name="dpu",
    compute_scale=0.5,
    memory_bytes=16 * GB,
    memory_bandwidth=20 * GB,
    dispatch_overhead=30 * USEC,
    slots=8,
)

MEMORY_BLADE_SPEC = DeviceSpec(
    kind=DeviceKind.MEMORY_BLADE,
    name="memory-blade",
    compute_scale=0.1,  # a weak controller, not a compute device
    memory_bytes=512 * GB,
    memory_bandwidth=50 * GB,
    dispatch_overhead=100 * USEC,
    slots=4,
)

_device_ids = itertools.count()


@dataclass
class Device:
    """A live device in a simulation: spec + execution slots + memory ledger."""

    sim: Simulator
    spec: DeviceSpec
    node_id: str
    device_id: str = ""
    slots: Resource = field(init=False)
    busy_seconds: float = field(init=False, default=0.0)  # slot-seconds burned
    slowdown: float = field(init=False, default=1.0)  # straggler injection (chaos)
    alive: bool = field(init=False, default=True)  # device-granular failure domain
    failures: int = field(init=False, default=0)  # times this device has died
    _mem_used: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not self.device_id:
            self.device_id = f"{self.spec.name}-{next(_device_ids)}"
        self.slots = Resource(self.sim, capacity=self.spec.slots, name=self.device_id)

    @property
    def kind(self) -> DeviceKind:
        return self.spec.kind

    @property
    def memory_free(self) -> int:
        return self.spec.memory_bytes - self._mem_used

    @property
    def memory_used(self) -> int:
        return self._mem_used

    def reserve_memory(self, nbytes: int) -> bool:
        """Reserve local memory; returns False when it would not fit."""
        if nbytes < 0:
            raise ValueError(f"negative reservation: {nbytes}")
        if self._mem_used + nbytes > self.spec.memory_bytes:
            return False
        self._mem_used += nbytes
        return True

    def free_memory(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self._mem_used:
            raise ValueError(
                f"freeing {nbytes} bytes but only {self._mem_used} reserved on {self.device_id}"
            )
        self._mem_used -= nbytes

    def fail(self) -> None:
        """The device dies: its memory contents are gone, its slots useless.

        Purely physical — the control plane is not told.  The node around
        the device keeps running (the whole point of device-granular
        failure domains): a dead GPU does not take its host down.
        """
        if self.alive:
            self.failures += 1
        self.alive = False

    def restore(self) -> None:
        """The device comes back — empty (its memory did not survive)."""
        self.alive = True

    def execute(self, cpu_seconds: float, label: str = "task"):
        """A process that occupies one slot for the scaled duration.

        Includes the device's dispatch overhead; this is the leaf primitive
        the runtime layers use to burn virtual compute time.  ``slowdown``
        (straggler injection) is sampled at launch time: tasks started
        while a device is degraded run slow for their whole duration.
        """
        duration = self.slowdown * (
            self.spec.dispatch_overhead + self.spec.scaled_duration(cpu_seconds)
        )

        def _run():
            grant = self.slots.request()
            yield grant
            try:
                yield self.sim.timeout(duration)
                self.busy_seconds += duration
            finally:
                self.slots.release()
            return duration

        return self.sim.process(_run(), name=f"{self.device_id}:{label}")

    def utilization(self, horizon: float) -> float:
        """Busy slot-seconds over capacity across ``horizon`` seconds."""
        if horizon <= 0:
            return 0.0
        return self.busy_seconds / (horizon * self.spec.slots)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Device({self.device_id}, node={self.node_id}, kind={self.kind.value})"
