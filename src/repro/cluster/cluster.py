"""Cluster builders for the deployment models of Figure 1.

Every builder wires devices into a :class:`Topology` and returns a
:class:`Cluster` that owns the simulator, network, and node directory.

* :func:`build_serverful` — Figure 1a: monolithic servers behind a ToR.
* :func:`build_logical_disagg` — compute pool + storage pool over the ToR
  (the "logical disaggregation" the paper says is battle-tested).
* :func:`build_physical_disagg` — Figure 1c substrate: CPU servers plus
  DPU-fronted GPU/FPGA cards and disaggregated-memory blades on a fabric.
* :func:`build_tightly_coupled` — accelerators on a high-speed interconnect
  (the "computing silo" / TPU-pod style cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from .hardware import (
    CPU_SERVER_SPEC,
    DPU_SPEC,
    FPGA_SPEC,
    GPU_SPEC,
    MEMORY_BLADE_SPEC,
    Device,
    DeviceKind,
    DeviceSpec,
)
from .network import Network
from .node import Node, NodeKind
from .simtime import Simulator
from .topology import (
    FABRIC_LINK,
    NIC_LINK,
    ONCHIP_LINK,
    PCIE_LINK,
    TIGHT_LINK,
    LinkSpec,
    Topology,
)

__all__ = [
    "Cluster",
    "build_serverful",
    "build_logical_disagg",
    "build_physical_disagg",
    "build_tightly_coupled",
]


@dataclass
class Cluster:
    """A simulated cluster: simulator + topology + nodes."""

    sim: Simulator
    topology: Topology
    network: Network
    nodes: Dict[str, Node] = field(default_factory=dict)
    switch_id: str = "tor-switch"

    def add_node(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node

    def node(self, node_id: str) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def nodes_of_kind(self, kind: NodeKind) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind == kind]

    def device(self, device_id: str) -> Device:
        for node in self.nodes.values():
            for dev in node.devices:
                if dev.device_id == device_id:
                    return dev
        raise KeyError(f"unknown device {device_id!r}")

    def devices_of_kind(self, kind: DeviceKind) -> List[Device]:
        return [d for n in self.nodes.values() for d in n.devices if d.kind == kind]

    def all_devices(self) -> List[Device]:
        return [d for n in self.nodes.values() for d in n.devices]

    def node_of_device(self, device_id: str) -> Node:
        for node in self.nodes.values():
            for dev in node.devices:
                if dev.device_id == device_id:
                    return node
        raise KeyError(f"unknown device {device_id!r}")


def _new_cluster() -> Cluster:
    sim = Simulator()
    topo = Topology()
    net = Network(sim, topo)
    cluster = Cluster(sim=sim, topology=topo, network=net)
    topo.add_endpoint(cluster.switch_id)
    return cluster


def _attach_server(
    cluster: Cluster,
    node_id: str,
    cpu_spec: DeviceSpec = CPU_SERVER_SPEC,
    accelerators: Iterable[DeviceSpec] = (),
    uplink: LinkSpec = NIC_LINK,
) -> Node:
    node = Node(node_id=node_id, kind=NodeKind.SERVER)
    cpu = Device(cluster.sim, cpu_spec, node_id=node_id, device_id=f"{node_id}/cpu")
    node.add_device(cpu)
    for i, spec in enumerate(accelerators):
        dev = Device(cluster.sim, spec, node_id=node_id, device_id=f"{node_id}/{spec.name}{i}")
        node.add_device(dev)
        cluster.topology.add_link(cpu.device_id, dev.device_id, PCIE_LINK)
    cluster.topology.add_link(cpu.device_id, cluster.switch_id, uplink)
    cluster.add_node(node)
    return node


def _attach_disagg_card(
    cluster: Cluster,
    node_id: str,
    companion_spec: DeviceSpec,
    n_companions: int = 1,
    uplink: LinkSpec = FABRIC_LINK,
) -> Node:
    """A DPU-fronted card: DPU terminates the fabric, companions hang off it."""
    node = Node(node_id=node_id, kind=NodeKind.DISAGG_DEVICE)
    dpu = Device(cluster.sim, DPU_SPEC, node_id=node_id, device_id=f"{node_id}/dpu")
    node.add_device(dpu)
    for i in range(n_companions):
        dev = Device(
            cluster.sim,
            companion_spec,
            node_id=node_id,
            device_id=f"{node_id}/{companion_spec.name}{i}",
        )
        node.add_device(dev)
        cluster.topology.add_link(dpu.device_id, dev.device_id, ONCHIP_LINK)
    cluster.topology.add_link(dpu.device_id, cluster.switch_id, uplink)
    cluster.add_node(node)
    return node


def _attach_memory_blade(cluster: Cluster, node_id: str) -> Node:
    node = Node(node_id=node_id, kind=NodeKind.MEMORY_BLADE)
    blade = Device(
        cluster.sim, MEMORY_BLADE_SPEC, node_id=node_id, device_id=f"{node_id}/mem"
    )
    node.add_device(blade)
    cluster.topology.add_link(blade.device_id, cluster.switch_id, FABRIC_LINK)
    cluster.add_node(node)
    return node


def build_serverful(n_servers: int = 4, gpus_per_server: int = 0) -> Cluster:
    """Figure 1a: regular servers (optionally with local GPUs) behind a ToR."""
    if n_servers < 1:
        raise ValueError("need at least one server")
    cluster = _new_cluster()
    for i in range(n_servers):
        _attach_server(
            cluster,
            f"server{i}",
            accelerators=[GPU_SPEC] * gpus_per_server,
        )
    return cluster


def build_logical_disagg(n_compute: int = 4, n_storage: int = 2) -> Cluster:
    """Compute pool + storage pool, decoupled over the network."""
    cluster = _new_cluster()
    for i in range(n_compute):
        _attach_server(cluster, f"compute{i}")
    for i in range(n_storage):
        storage_spec = CPU_SERVER_SPEC.with_overrides(
            name="storage-server", memory_bytes=256 * CPU_SERVER_SPEC.memory_bytes // 64
        )
        _attach_server(cluster, f"storage{i}", cpu_spec=storage_spec)
    return cluster


def build_physical_disagg(
    n_servers: int = 2,
    n_gpu_cards: int = 2,
    n_fpga_cards: int = 2,
    n_mem_blades: int = 1,
    fpgas_per_card: int = 2,
) -> Cluster:
    """Figure 1c / Figure 3 substrate: DPU-fronted cards on a fabric."""
    cluster = _new_cluster()
    for i in range(n_servers):
        _attach_server(cluster, f"server{i}")
    for i in range(n_gpu_cards):
        _attach_disagg_card(cluster, f"gpucard{i}", GPU_SPEC)
    for i in range(n_fpga_cards):
        _attach_disagg_card(cluster, f"fpgacard{i}", FPGA_SPEC, n_companions=fpgas_per_card)
    for i in range(n_mem_blades):
        _attach_memory_blade(cluster, f"memblade{i}")
    return cluster


def build_tightly_coupled(n_accel: int = 4) -> Cluster:
    """A computing silo: accelerators all-to-all on a high-speed interconnect."""
    if n_accel < 1:
        raise ValueError("need at least one accelerator")
    cluster = _new_cluster()
    devices = []
    for i in range(n_accel):
        node = Node(node_id=f"accel{i}", kind=NodeKind.ACCELERATOR)
        dev = Device(cluster.sim, GPU_SPEC, node_id=node.node_id, device_id=f"accel{i}/gpu")
        node.add_device(dev)
        cluster.add_node(node)
        devices.append(dev)
    for i, a in enumerate(devices):
        for b in devices[i + 1 :]:
            cluster.topology.add_link(a.device_id, b.device_id, TIGHT_LINK)
    # The silo still reaches the rest of the data center through one uplink.
    cluster.topology.add_link(devices[0].device_id, cluster.switch_id, NIC_LINK)
    return cluster
