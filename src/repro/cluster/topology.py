"""Interconnect topology: endpoints, links, and shortest-path routing.

Endpoints are string ids (node ids, device ids, or switch ids).  Links are
directional pairs with a propagation latency and a serialization bandwidth.
Routing is static shortest-path by latency, precomputed lazily with
Dijkstra and cached; the network layer then charges per-link serialization
and contention along the route.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .hardware import GB, USEC

__all__ = ["LinkSpec", "Topology", "PCIE_LINK", "NIC_LINK", "FABRIC_LINK", "TIGHT_LINK", "ONCHIP_LINK"]


@dataclass(frozen=True)
class LinkSpec:
    """Latency/bandwidth pair for one hop."""

    latency: float  # seconds, propagation + per-message fixed cost
    bandwidth: float  # bytes/sec

    def transfer_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency + nbytes / self.bandwidth


# Link catalog (loosely calibrated; shape, not silicon).
ONCHIP_LINK = LinkSpec(latency=0.2 * USEC, bandwidth=400 * GB)  # within a device/card
PCIE_LINK = LinkSpec(latency=1 * USEC, bandwidth=32 * GB)  # host <-> local device
NIC_LINK = LinkSpec(latency=5 * USEC, bandwidth=12.5 * GB)  # node <-> ToR (100 GbE)
FABRIC_LINK = LinkSpec(latency=3 * USEC, bandwidth=25 * GB)  # disaggregation fabric
TIGHT_LINK = LinkSpec(latency=0.5 * USEC, bandwidth=300 * GB)  # tightly-coupled cluster


class Topology:
    """An undirected weighted multigraph of endpoints with cached routing."""

    def __init__(self) -> None:
        self._adj: Dict[str, Dict[str, LinkSpec]] = {}
        self._route_cache: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        self._degraded: Dict[Tuple[str, str], float] = {}

    # -- construction ------------------------------------------------------

    def add_endpoint(self, endpoint: str) -> None:
        self._adj.setdefault(endpoint, {})

    def add_link(self, a: str, b: str, spec: LinkSpec) -> None:
        """Add (or replace) the bidirectional link between ``a`` and ``b``."""
        if a == b:
            raise ValueError(f"self-link at {a!r}")
        self.add_endpoint(a)
        self.add_endpoint(b)
        self._adj[a][b] = spec
        self._adj[b][a] = spec
        self._route_cache.clear()

    @property
    def endpoints(self) -> Iterable[str]:
        return self._adj.keys()

    def has_endpoint(self, endpoint: str) -> bool:
        return endpoint in self._adj

    def link(self, a: str, b: str) -> LinkSpec:
        try:
            return self._adj[a][b]
        except KeyError:
            raise KeyError(f"no link {a!r} -> {b!r}") from None

    def neighbors(self, endpoint: str) -> Iterable[str]:
        return self._adj.get(endpoint, {}).keys()

    # -- fault injection hooks ----------------------------------------------

    def degrade_link(self, a: str, b: str, factor: float) -> None:
        """Slow the ``a<->b`` link by ``factor`` (>= 1.0).

        Degradation multiplies serialization and propagation time charged by
        the network layer; routing still uses the healthy latencies (real
        routing tables do not react instantly to a flaky cable either).
        """
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1.0, got {factor}")
        self.link(a, b)  # raises KeyError for unknown links
        key = tuple(sorted((a, b)))
        if factor == 1.0:
            self._degraded.pop(key, None)
        else:
            self._degraded[key] = factor

    def restore_link(self, a: str, b: str) -> None:
        self._degraded.pop(tuple(sorted((a, b))), None)

    def degradation(self, a: str, b: str) -> float:
        """Current slowdown factor for one hop (1.0 = healthy)."""
        if not self._degraded:  # the common case: skip the sort+tuple build
            return 1.0
        return self._degraded.get(tuple(sorted((a, b))), 1.0)

    # -- routing -----------------------------------------------------------

    def route(self, src: str, dst: str) -> List[Tuple[str, str]]:
        """Shortest-latency path as a list of (hop_src, hop_dst) pairs."""
        if src not in self._adj:
            raise KeyError(f"unknown endpoint {src!r}")
        if dst not in self._adj:
            raise KeyError(f"unknown endpoint {dst!r}")
        if src == dst:
            return []
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached

        # Dijkstra by latency with deterministic tie-breaking on endpoint id.
        dist: Dict[str, float] = {src: 0.0}
        prev: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited: set[str] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            if u == dst:
                break
            for v in sorted(self._adj[u]):
                if v in visited:
                    continue
                nd = d + self._adj[u][v].latency
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        if dst not in dist:
            raise KeyError(f"no path {src!r} -> {dst!r}")

        hops: List[Tuple[str, str]] = []
        cur = dst
        while cur != src:
            hops.append((prev[cur], cur))
            cur = prev[cur]
        hops.reverse()
        self._route_cache[key] = hops
        return hops

    def path_latency(self, src: str, dst: str) -> float:
        return sum(self.link(a, b).latency for a, b in self.route(src, dst))

    def bottleneck_bandwidth(self, src: str, dst: str) -> float:
        hops = self.route(src, dst)
        if not hops:
            return float("inf")
        return min(self.link(a, b).bandwidth for a, b in hops)

    def hop_count(self, src: str, dst: str) -> int:
        return len(self.route(src, dst))
