"""Message and bulk-data transfer over the topology, with link contention.

Each link gets a FIFO :class:`~repro.cluster.simtime.Resource`; a transfer
holds each link on its route for the serialization time (store-and-forward,
one link at a time) and additionally pays propagation latency per hop.
Small control messages use a fixed frame size so that the control plane's
hop count — the quantity Gen-2 reduces — shows up directly in virtual time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, Iterable, Tuple

from .simtime import Process, Resource, Simulator
from .topology import Topology

__all__ = ["Network", "NetworkStats", "CONTROL_MSG_BYTES"]

CONTROL_MSG_BYTES = 256


@dataclass
class NetworkStats:
    """Aggregate counters, inspected by the locality experiments."""

    transfers: int = 0
    messages: int = 0
    bytes_moved: int = 0
    dropped_messages: int = 0
    blocked_transfers: int = 0
    bytes_by_link: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record(self, hops, nbytes: int, is_message: bool) -> None:
        if is_message:
            self.messages += 1
        else:
            self.transfers += 1
            self.bytes_moved += nbytes
        for hop in hops:
            key = tuple(sorted(hop))
            self.bytes_by_link[key] = self.bytes_by_link.get(key, 0) + nbytes

    def reset(self) -> None:
        self.transfers = 0
        self.messages = 0
        self.bytes_moved = 0
        self.dropped_messages = 0
        self.blocked_transfers = 0
        self.bytes_by_link.clear()


class Network:
    """Executes transfers as simulation processes.

    Fault-injection hooks (driven by :mod:`repro.chaos`):

    * **Partitions** — a set of node-id groups; traffic crossing a group
      boundary is dropped (messages complete with value ``False``,
      transfers with value ``None``).  Endpoints map to nodes by their
      ``node_id/...`` prefix; endpoints outside every named group (e.g.
      the ToR switch) form an implicit extra group.
    * **Message loss** — a seeded Bernoulli drop applied to control
      messages only; bulk transfers ride a retransmitting transport and
      instead see partitions/degradation.
    * **Degradation** — per-link slowdown factors (see
      :meth:`Topology.degrade_link`) multiply serialization and
      propagation time.
    """

    def __init__(self, sim: Simulator, topology: Topology):
        self.sim = sim
        self.topology = topology
        self.stats = NetworkStats()
        # a telemetry MetricsRegistry (duck-typed: this layer sits below
        # repro.telemetry); the runtime wires it in so per-link bytes,
        # messages, and busy-time land in the cluster-wide metrics plane
        self.metrics = None
        self._link_slots: Dict[Tuple[str, str], Resource] = {}
        self._partition_groups: Tuple[frozenset, ...] = ()
        self._loss_rate = 0.0
        self._loss_rng = random.Random(0)

    # -- telemetry -----------------------------------------------------------

    @staticmethod
    def link_label(a: str, b: str) -> str:
        """Canonical metrics label for an undirected link."""
        lo, hi = sorted((a, b))
        return f"{lo}<->{hi}"

    def _meter_hops(self, hops, nbytes: int, is_message: bool) -> None:
        if self.metrics is None:
            return
        for a, b in hops:
            link = self.link_label(a, b)
            if is_message:
                self.metrics.counter(
                    "skadi_link_messages_total",
                    "control messages carried per fabric link",
                    link=link,
                ).inc()
            else:
                self.metrics.counter(
                    "skadi_link_transfers_total",
                    "bulk transfers carried per fabric link",
                    link=link,
                ).inc()
            self.metrics.counter(
                "skadi_link_bytes_total",
                "payload bytes routed over each fabric link",
                link=link,
            ).inc(nbytes)

    def _meter_busy(self, a: str, b: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_link_busy_seconds_total",
                "virtual seconds each link spent serializing bytes",
                link=self.link_label(a, b),
            ).inc(seconds)

    def _meter_drop(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_net_dropped_total",
                "messages/transfers chaos refused to deliver",
                kind=kind,
            ).inc()

    # -- fault injection hooks ----------------------------------------------

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the cluster: traffic between different groups is dropped.

        ``groups`` are sets of *node ids*.  Nodes not named in any group
        form one implicit remainder group, so ``partition({"server1"})``
        isolates server1 from everything else.
        """
        self._partition_groups = tuple(frozenset(g) for g in groups)

    def heal_partition(self) -> None:
        self._partition_groups = ()

    @property
    def partitioned(self) -> bool:
        return bool(self._partition_groups)

    def set_message_loss(self, rate: float, seed: int = 0) -> None:
        """Drop control messages with probability ``rate`` (seeded, so a
        given chaos schedule reproduces the identical drop pattern)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self._loss_rate = rate
        self._loss_rng = random.Random(seed)

    def _endpoint_group(self, endpoint: str) -> int:
        node = endpoint.split("/", 1)[0]
        for i, group in enumerate(self._partition_groups):
            if node in group:
                return i
        return -1  # the implicit remainder group

    def crosses_partition(self, src: str, dst: str) -> bool:
        if not self._partition_groups or src == dst:
            return False
        return self._endpoint_group(src) != self._endpoint_group(dst)

    def _hop_factor(self, a: str, b: str) -> float:
        return self.topology.degradation(a, b)

    def _slot(self, a: str, b: str) -> Resource:
        key = tuple(sorted((a, b)))
        slot = self._link_slots.get(key)
        if slot is None:
            slot = Resource(self.sim, capacity=1, name=f"link:{key[0]}<->{key[1]}")
            self._link_slots[key] = slot
        return slot

    def transfer(self, src: str, dst: str, nbytes: int, label: str = "xfer") -> Process:
        """Move ``nbytes`` from ``src`` to ``dst``; returns the process.

        The process value is ``nbytes`` on success, ``None`` when a
        partition blocked the transfer (callers treat that as a fetch
        failure and retry).  Zero-hop transfers (src == dst) complete after
        a zero timeout so callers can always ``yield`` the result uniformly.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        hops = self.topology.route(src, dst)
        self.stats.record(hops, nbytes, is_message=False)
        self._meter_hops(hops, nbytes, is_message=False)

        def _move() -> Generator:
            if self.crosses_partition(src, dst):
                # the sender burns a connect-timeout's worth of first-hop
                # latency before declaring the peer unreachable
                self.stats.blocked_transfers += 1
                self._meter_drop("blocked_transfer")
                if hops:
                    yield self.sim.timeout(self.topology.link(*hops[0]).latency)
                return None
            for a, b in hops:
                link = self.topology.link(a, b)
                factor = self._hop_factor(a, b)
                slot = self._slot(a, b)
                yield slot.request()
                try:
                    serialize = factor * nbytes / link.bandwidth
                    self._meter_busy(a, b, serialize)
                    yield self.sim.timeout(serialize)
                finally:
                    slot.release()
                yield self.sim.timeout(factor * link.latency)
            return nbytes

        return self.sim.process(_move(), name=f"net:{label}:{src}->{dst}")

    def message(self, src: str, dst: str, label: str = "msg") -> Process:
        """A small control-plane message (fixed frame, latency-dominated).

        The process value is ``True`` when the message arrived, ``False``
        when chaos dropped it (loss or partition).  Callers that predate
        fault injection ignore the value; delivery-sensitive protocols
        (heartbeats, leases) check it.
        """
        hops = self.topology.route(src, dst)
        self.stats.record(hops, CONTROL_MSG_BYTES, is_message=True)
        self._meter_hops(hops, CONTROL_MSG_BYTES, is_message=True)
        dropped = self.crosses_partition(src, dst) or (
            self._loss_rate > 0.0 and self._loss_rng.random() < self._loss_rate
        )

        def _send() -> Generator:
            if dropped:
                self.stats.dropped_messages += 1
                self._meter_drop("message")
                if hops:
                    yield self.sim.timeout(
                        self.topology.link(*hops[0]).transfer_time(CONTROL_MSG_BYTES)
                    )
                return False
            for a, b in hops:
                link = self.topology.link(a, b)
                yield self.sim.timeout(
                    self._hop_factor(a, b) * link.transfer_time(CONTROL_MSG_BYTES)
                )
            return True

        return self.sim.process(_send(), name=f"net:{label}:{src}->{dst}")

    def rpc(self, src: str, dst: str, label: str = "rpc") -> Process:
        """Request/response control-message pair (two one-way messages).

        The process value is ``True`` only when both legs were delivered.
        """

        def _roundtrip() -> Generator:
            req_ok = yield self.message(src, dst, label=f"{label}:req")
            rsp_ok = yield self.message(dst, src, label=f"{label}:rsp")
            return bool(req_ok and rsp_ok)

        return self.sim.process(_roundtrip(), name=f"net:{label}:{src}<->{dst}")

    def transfer_time_estimate(self, src: str, dst: str, nbytes: int) -> float:
        """Uncontended analytic estimate (used by placement cost models)."""
        hops = self.topology.route(src, dst)
        return sum(self.topology.link(a, b).transfer_time(nbytes) for a, b in hops)
