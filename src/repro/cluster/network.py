"""Message and bulk-data transfer over the topology, with link contention.

Each link gets a FIFO :class:`~repro.cluster.simtime.Resource`.  Bulk
transfers are split into fixed-size *chunks* pipelined across hops
(cut-through forwarding): while chunk *c* serializes on hop *h*, chunk
*c+1* serializes on hop *h-1*, so an H-hop route costs roughly one full
serialization plus (H-1) chunk-times instead of H full serializations.
Setting :attr:`Network.chunk_bytes` to ``None`` recovers the legacy
store-and-forward model (the whole object is one chunk).

Small control messages use a fixed frame size so that the control plane's
hop count — the quantity Gen-2 reduces — shows up directly in virtual time.

The network also keeps a *contention ledger* per link (queued-but-unsent
bytes and the busy-until horizon of the chunk currently on the wire);
:meth:`transfer_time_estimate` folds that ledger plus chaos degradation
into the placement cost model, steering the locality scheduler off hot
and degraded links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, Iterable, List, Optional, Sequence, Tuple

from .simtime import Process, Resource, Signal, Simulator
from .topology import Topology

__all__ = [
    "Network",
    "NetworkStats",
    "CONTROL_MSG_BYTES",
    "DEFAULT_CHUNK_BYTES",
    "MAX_CHUNKS_PER_TRANSFER",
]

CONTROL_MSG_BYTES = 256

# Bulk transfers are cut into chunks of this size for pipelining.  The chunk
# count per transfer is capped so one enormous object (a blade spill) cannot
# explode the event queue; the cap still captures nearly all of the
# pipelining win (the per-hop penalty shrinks to 1/MAX_CHUNKS of the
# serialization time).
DEFAULT_CHUNK_BYTES = 256 * 1024
MAX_CHUNKS_PER_TRANSFER = 32


@dataclass
class NetworkStats:
    """Aggregate counters, inspected by the locality experiments.

    *Attempted* counters tick when a transfer/message is submitted;
    *delivered* counters (``transfers``, ``messages_delivered``,
    ``bytes_moved``, ``bytes_by_link``) tick only for traffic that chaos
    let through, so partitions and message loss never inflate the
    byte-movement accounting.
    """

    transfers: int = 0  # delivered bulk transfers
    messages: int = 0  # attempted control messages (delivered + dropped)
    messages_delivered: int = 0
    attempted_transfers: int = 0
    attempted_bytes: int = 0
    bytes_moved: int = 0  # delivered payload bytes
    dropped_messages: int = 0
    blocked_transfers: int = 0
    multicasts: int = 0
    multicast_bytes_saved: int = 0  # vs. one unicast per consumer
    bytes_by_link: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record_link(self, key: Tuple[str, str], nbytes: int) -> None:
        self.bytes_by_link[key] = self.bytes_by_link.get(key, 0) + nbytes

    def reset(self) -> None:
        self.transfers = 0
        self.messages = 0
        self.messages_delivered = 0
        self.attempted_transfers = 0
        self.attempted_bytes = 0
        self.bytes_moved = 0
        self.dropped_messages = 0
        self.blocked_transfers = 0
        self.multicasts = 0
        self.multicast_bytes_saved = 0
        self.bytes_by_link.clear()


class Network:
    """Executes transfers as simulation processes.

    Fault-injection hooks (driven by :mod:`repro.chaos`):

    * **Partitions** — a set of node-id groups; traffic crossing a group
      boundary is dropped (messages complete with value ``False``,
      transfers with value ``None``).  Endpoints map to nodes by their
      ``node_id/...`` prefix; endpoints outside every named group (e.g.
      the ToR switch) form an implicit extra group.
    * **Message loss** — a seeded Bernoulli drop applied to control
      messages only; bulk transfers ride a retransmitting transport and
      instead see partitions/degradation.
    * **Degradation** — per-link slowdown factors (see
      :meth:`Topology.degrade_link`) multiply serialization and
      propagation time.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        chunk_bytes: Optional[int] = DEFAULT_CHUNK_BYTES,
        max_chunks: int = MAX_CHUNKS_PER_TRANSFER,
    ):
        self.sim = sim
        self.topology = topology
        self.stats = NetworkStats()
        # ``None`` disables chunking: every transfer is one store-and-forward
        # unit per hop (the pre-fast-data-plane behaviour)
        self.chunk_bytes = chunk_bytes
        self.max_chunks = max(1, max_chunks)
        # a telemetry MetricsRegistry (duck-typed: this layer sits below
        # repro.telemetry); the runtime wires it in so per-link bytes,
        # messages, and busy-time land in the cluster-wide metrics plane
        self.metrics = None
        self._link_slots: Dict[Tuple[str, str], Resource] = {}
        # directional (a, b) -> canonical resources/keys, cached because the
        # sort + tuple build showed up hot in transfer-heavy runs
        self._slot_of_pair: Dict[Tuple[str, str], Resource] = {}
        self._key_of_pair: Dict[Tuple[str, str], Tuple[str, str]] = {}
        # contention ledger: admitted-but-not-yet-serialized bytes per link,
        # and the virtual time the chunk currently on the wire frees the link
        self._queued_bytes: Dict[Tuple[str, str], int] = {}
        self._busy_until: Dict[Tuple[str, str], float] = {}
        self._partition_groups: Tuple[frozenset, ...] = ()
        self._loss_rate = 0.0
        self._loss_rng = random.Random(0)

    # -- telemetry -----------------------------------------------------------

    @staticmethod
    def link_label(a: str, b: str) -> str:
        """Canonical metrics label for an undirected link."""
        lo, hi = sorted((a, b))
        return f"{lo}<->{hi}"

    def _meter_link_bytes(self, a: str, b: str, nbytes: int) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_link_bytes_total",
                "payload bytes routed over each fabric link",
                link=self.link_label(a, b),
            ).inc(nbytes)

    def _meter_link_carried(self, a: str, b: str, is_message: bool) -> None:
        if self.metrics is None:
            return
        if is_message:
            self.metrics.counter(
                "skadi_link_messages_total",
                "control messages carried per fabric link",
                link=self.link_label(a, b),
            ).inc()
        else:
            self.metrics.counter(
                "skadi_link_transfers_total",
                "bulk transfers carried per fabric link",
                link=self.link_label(a, b),
            ).inc()

    def _meter_busy(self, a: str, b: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_link_busy_seconds_total",
                "virtual seconds each link spent serializing bytes",
                link=self.link_label(a, b),
            ).inc(seconds)

    def _meter_drop(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "skadi_net_dropped_total",
                "messages/transfers chaos refused to deliver",
                kind=kind,
            ).inc()

    # -- fault injection hooks ----------------------------------------------

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the cluster: traffic between different groups is dropped.

        ``groups`` are sets of *node ids*.  Nodes not named in any group
        form one implicit remainder group, so ``partition({"server1"})``
        isolates server1 from everything else.
        """
        self._partition_groups = tuple(frozenset(g) for g in groups)

    def heal_partition(self) -> None:
        self._partition_groups = ()

    @property
    def partitioned(self) -> bool:
        return bool(self._partition_groups)

    @property
    def message_loss_rate(self) -> float:
        """Current seeded control-message drop probability (read-only).

        Exposed so observers (the heartbeat monitor's fast-forward
        listener) can ask "is the control network clean?" without
        reaching into ``_loss_rate``.
        """
        return self._loss_rate

    def set_message_loss(self, rate: float, seed: int = 0) -> None:
        """Drop control messages with probability ``rate`` (seeded, so a
        given chaos schedule reproduces the identical drop pattern)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self._loss_rate = rate
        self._loss_rng = random.Random(seed)

    def _endpoint_group(self, endpoint: str) -> int:
        node = endpoint.split("/", 1)[0]
        for i, group in enumerate(self._partition_groups):
            if node in group:
                return i
        return -1  # the implicit remainder group

    def crosses_partition(self, src: str, dst: str) -> bool:
        if not self._partition_groups or src == dst:
            return False
        return self._endpoint_group(src) != self._endpoint_group(dst)

    def _hop_factor(self, a: str, b: str) -> float:
        return self.topology.degradation(a, b)

    def _link_key(self, a: str, b: str) -> Tuple[str, str]:
        key = self._key_of_pair.get((a, b))
        if key is None:
            key = (a, b) if a <= b else (b, a)
            self._key_of_pair[(a, b)] = key
        return key

    def _slot(self, a: str, b: str) -> Resource:
        slot = self._slot_of_pair.get((a, b))
        if slot is None:
            key = self._link_key(a, b)
            slot = self._link_slots.get(key)
            if slot is None:
                slot = Resource(self.sim, capacity=1, name=f"link:{key[0]}<->{key[1]}")
                self._link_slots[key] = slot
            self._slot_of_pair[(a, b)] = slot
        return slot

    # -- contention ledger ---------------------------------------------------

    def _admit(self, hops: Sequence[Tuple[str, str]], nbytes: int) -> None:
        for a, b in hops:
            key = self._link_key(a, b)
            self._queued_bytes[key] = self._queued_bytes.get(key, 0) + nbytes

    def _unadmit(self, hops: Sequence[Tuple[str, str]], nbytes: int) -> None:
        for a, b in hops:
            key = self._link_key(a, b)
            left = self._queued_bytes.get(key, 0) - nbytes
            self._queued_bytes[key] = left if left > 0 else 0

    def queued_bytes(self, a: str, b: str) -> int:
        """Bytes admitted for the ``a<->b`` link but not yet across it."""
        return self._queued_bytes.get(self._link_key(a, b), 0)

    def link_wait_estimate(self, a: str, b: str) -> float:
        """How long a new arrival would wait for the ``a<->b`` link: the
        backlog's serialization time or the current holder's residual busy
        window, whichever dominates (degradation included)."""
        key = self._link_key(a, b)
        backlog = self._queued_bytes.get(key, 0)
        factor = self.topology.degradation(a, b)
        wait = factor * backlog / self.topology.link(a, b).bandwidth
        residual = self._busy_until.get(key, 0.0) - self.sim.now
        return wait if wait >= residual else max(0.0, residual)

    # -- chunking ------------------------------------------------------------

    def _chunk_sizes(self, nbytes: int) -> List[int]:
        """Split ``nbytes`` into pipeline chunks summing exactly to
        ``nbytes``.  With chunking disabled (or a small payload) the whole
        object is one chunk — the legacy store-and-forward unit."""
        if self.chunk_bytes is None or nbytes <= self.chunk_bytes:
            return [nbytes]
        n = min(self.max_chunks, -(-nbytes // self.chunk_bytes))
        base, rem = divmod(nbytes, n)
        return [base + 1] * rem + [base] * (n - rem)

    def _forward_hop(
        self,
        a: str,
        b: str,
        chunks: Sequence[int],
        src_sigs: Sequence[Signal],
        dst_sigs: Sequence[Signal],
        meter: bool = True,
    ) -> Generator:
        """One hop's forwarder: serialize each chunk onto the ``a->b`` link
        as it arrives, releasing the link between chunks so other traffic
        can interleave, and propagate it (latency) without blocking the
        next chunk's serialization."""
        link = self.topology.link(a, b)
        slot = self._slot(a, b)
        key = self._link_key(a, b)
        for c, clen in enumerate(chunks):
            yield src_sigs[c]
            yield slot.request()
            try:
                factor = self._hop_factor(a, b)
                serialize = factor * clen / link.bandwidth
                self._busy_until[key] = self.sim.now + serialize
                self._meter_busy(a, b, serialize)
                yield self.sim.timeout(serialize)
            finally:
                slot.release()
            left = self._queued_bytes.get(key, 0) - clen
            self._queued_bytes[key] = left if left > 0 else 0
            if meter:
                self.stats.record_link(key, clen)
                self._meter_link_bytes(a, b, clen)
            # propagation must not stall the pipeline: trigger the arrival
            # via the event queue instead of sleeping in this process
            self.sim.schedule(factor * link.latency, dst_sigs[c].trigger, clen)

    def transfer(self, src: str, dst: str, nbytes: int, label: str = "xfer") -> Process:
        """Move ``nbytes`` from ``src`` to ``dst``; returns the process.

        The process value is ``nbytes`` on success, ``None`` when a
        partition blocked the transfer (callers treat that as a fetch
        failure and retry).  Zero-hop transfers (src == dst) complete after
        a zero timeout so callers can always ``yield`` the result uniformly.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        hops = self.topology.route(src, dst)
        self.stats.attempted_transfers += 1
        self.stats.attempted_bytes += nbytes
        self._admit(hops, nbytes)

        def _move() -> Generator:
            if self.crosses_partition(src, dst):
                # the sender burns a connect-timeout's worth of first-hop
                # latency before declaring the peer unreachable
                self.stats.blocked_transfers += 1
                self._meter_drop("blocked_transfer")
                self._unadmit(hops, nbytes)
                if hops:
                    yield self.sim.timeout(self.topology.link(*hops[0]).latency)
                return None
            if not hops:
                yield self.sim.timeout(0.0)
                self.stats.transfers += 1
                self.stats.bytes_moved += nbytes
                return nbytes
            chunks = self._chunk_sizes(nbytes)
            if len(chunks) == 1:
                # single chunk: nothing to pipeline, so walk the hops inline
                # (identical timing, a fraction of the events — control-sized
                # transfers dominate event counts in runtime workloads)
                for a, b in hops:
                    link = self.topology.link(a, b)
                    slot = self._slot(a, b)
                    key = self._link_key(a, b)
                    self._meter_link_carried(a, b, is_message=False)
                    yield slot.request()
                    try:
                        factor = self._hop_factor(a, b)
                        serialize = factor * nbytes / link.bandwidth
                        self._busy_until[key] = self.sim.now + serialize
                        self._meter_busy(a, b, serialize)
                        yield self.sim.timeout(serialize)
                    finally:
                        slot.release()
                    left = self._queued_bytes.get(key, 0) - nbytes
                    self._queued_bytes[key] = left if left > 0 else 0
                    self.stats.record_link(key, nbytes)
                    self._meter_link_bytes(a, b, nbytes)
                    yield self.sim.timeout(factor * link.latency)
                self.stats.transfers += 1
                self.stats.bytes_moved += nbytes
                return nbytes
            # arrival signal per (hop boundary, chunk); the source has every
            # chunk available immediately ("one serialization" total)
            arrivals = [
                [Signal(self.sim) for _ in chunks] for _ in range(len(hops) + 1)
            ]
            for sig in arrivals[0]:
                sig.trigger()
            for h, (a, b) in enumerate(hops):
                self._meter_link_carried(a, b, is_message=False)
                self.sim.process(
                    self._forward_hop(a, b, chunks, arrivals[h], arrivals[h + 1]),
                    name=f"net:{label}:hop:{a}->{b}",
                )
            yield arrivals[len(hops)][-1]
            self.stats.transfers += 1
            self.stats.bytes_moved += nbytes
            return nbytes

        return self.sim.process(_move(), name=f"net:{label}:{src}->{dst}")

    # -- multicast -----------------------------------------------------------

    def multicast_tree(
        self, src: str, dsts: Sequence[str]
    ) -> Tuple[List[Tuple[str, str]], int]:
        """The spanning tree used to distribute one object from ``src`` to
        ``dsts``: the union of shortest-path routes, each endpoint entered
        once.  Returns ``(edges, unicast_hop_count)`` where the latter is
        what one-unicast-per-consumer would have paid in link crossings."""
        edges: List[Tuple[str, str]] = []
        reached = {src}
        unicast_hops = 0
        for dst in dsts:
            route = self.topology.route(src, dst)
            unicast_hops += len(route)
            for a, b in route:
                if b not in reached:
                    reached.add(b)
                    edges.append((a, b))
        return edges, unicast_hops

    def multicast(
        self, src: str, dsts: Sequence[str], nbytes: int, label: str = "mcast"
    ) -> Process:
        """Distribute ``nbytes`` from ``src`` to every endpoint in ``dsts``
        along a spanning tree: each tree link serializes the payload once,
        however many consumers sit behind it.  Chunks pipeline down the
        tree exactly as in :meth:`transfer`.

        The process value is the sorted list of destination endpoints the
        payload reached (endpoints cut off by a partition are skipped).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        targets = sorted(set(dsts))
        reachable = [d for d in targets if not self.crosses_partition(src, d)]
        blocked = len(targets) - len(reachable)
        edges, unicast_hops = self.multicast_tree(src, reachable)
        saved = nbytes * max(0, unicast_hops - len(edges))
        self.stats.attempted_transfers += 1
        self.stats.attempted_bytes += nbytes
        for a, b in edges:
            key = self._link_key(a, b)
            self._queued_bytes[key] = self._queued_bytes.get(key, 0) + nbytes

        def _cast() -> Generator:
            if blocked:
                self.stats.blocked_transfers += blocked
                self._meter_drop("blocked_multicast")
            if not reachable:
                first = self.topology.route(src, targets[0]) if targets else []
                if first:
                    yield self.sim.timeout(self.topology.link(*first[0]).latency)
                return []
            chunks = self._chunk_sizes(nbytes)
            arrive: Dict[str, List[Signal]] = {
                src: [Signal(self.sim) for _ in chunks]
            }
            for _a, b in edges:
                arrive[b] = [Signal(self.sim) for _ in chunks]
            for sig in arrive[src]:
                sig.trigger()
            for a, b in edges:
                self._meter_link_carried(a, b, is_message=False)
                self.sim.process(
                    self._forward_hop(a, b, chunks, arrive[a], arrive[b]),
                    name=f"net:{label}:edge:{a}->{b}",
                )
            if edges:
                yield self.sim.all_of([arrive[d][-1] for d in reachable])
            else:
                yield self.sim.timeout(0.0)  # every consumer was the source
            self.stats.transfers += 1
            self.stats.bytes_moved += nbytes
            self.stats.multicasts += 1
            self.stats.multicast_bytes_saved += saved
            if self.metrics is not None and saved:
                self.metrics.counter(
                    "skadi_multicast_bytes_saved_total",
                    "bytes multicast trees avoided serializing vs. per-consumer unicasts",
                ).inc(saved)
            return list(reachable)

        return self.sim.process(_cast(), name=f"net:{label}:{src}->*{len(targets)}")

    # -- control messages ----------------------------------------------------

    def message(self, src: str, dst: str, label: str = "msg") -> Process:
        """A small control-plane message (fixed frame, latency-dominated).

        The process value is ``True`` when the message arrived, ``False``
        when chaos dropped it (loss or partition).  Callers that predate
        fault injection ignore the value; delivery-sensitive protocols
        (heartbeats, leases) check it.
        """
        hops = self.topology.route(src, dst)
        self.stats.messages += 1
        dropped = self.crosses_partition(src, dst) or (
            self._loss_rate > 0.0 and self._loss_rng.random() < self._loss_rate
        )

        def _send() -> Generator:
            if dropped:
                self.stats.dropped_messages += 1
                self._meter_drop("message")
                if hops:
                    yield self.sim.timeout(
                        self.topology.link(*hops[0]).transfer_time(CONTROL_MSG_BYTES)
                    )
                return False
            for a, b in hops:
                link = self.topology.link(a, b)
                yield self.sim.timeout(
                    self._hop_factor(a, b) * link.transfer_time(CONTROL_MSG_BYTES)
                )
                self.stats.record_link(self._link_key(a, b), CONTROL_MSG_BYTES)
                self._meter_link_carried(a, b, is_message=True)
                self._meter_link_bytes(a, b, CONTROL_MSG_BYTES)
            self.stats.messages_delivered += 1
            return True

        return self.sim.process(_send(), name=f"net:{label}:{src}->{dst}")

    def rpc(self, src: str, dst: str, label: str = "rpc") -> Process:
        """Request/response control-message pair (two one-way messages).

        The process value is ``True`` only when both legs were delivered.
        """

        def _roundtrip() -> Generator:
            req_ok = yield self.message(src, dst, label=f"{label}:req")
            rsp_ok = yield self.message(dst, src, label=f"{label}:rsp")
            return bool(req_ok and rsp_ok)

        return self.sim.process(_roundtrip(), name=f"net:{label}:{src}<->{dst}")

    # -- the placement cost model --------------------------------------------

    def transfer_time_estimate(
        self, src: str, dst: str, nbytes: int, contended: bool = False
    ) -> float:
        """Analytic transfer-time estimate for placement cost models.

        Mirrors the simulated pipeline exactly for an idle fabric: the
        chunked cut-through recurrence over the route's hops, with chaos
        degradation factors applied per hop.  With ``contended=True`` the
        per-link contention ledger is added: a new transfer waits behind
        the queued backlog (or the residual busy window) of every hop, so
        hot links look expensive to the locality scheduler.
        """
        hops = self.topology.route(src, dst)
        if not hops:
            return 0.0
        chunks = self._chunk_sizes(nbytes)
        ready = [0.0] * len(chunks)
        for a, b in hops:
            link = self.topology.link(a, b)
            factor = self.topology.degradation(a, b)
            free = self.link_wait_estimate(a, b) if contended else 0.0
            latency = factor * link.latency
            inv_bw = factor / link.bandwidth
            for c, clen in enumerate(chunks):
                start = ready[c] if ready[c] > free else free
                free = start + clen * inv_bw
                ready[c] = free + latency
        return ready[-1]
