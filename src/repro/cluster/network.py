"""Message and bulk-data transfer over the topology, with link contention.

Each link gets a FIFO :class:`~repro.cluster.simtime.Resource`; a transfer
holds each link on its route for the serialization time (store-and-forward,
one link at a time) and additionally pays propagation latency per hop.
Small control messages use a fixed frame size so that the control plane's
hop count — the quantity Gen-2 reduces — shows up directly in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Tuple

from .simtime import Process, Resource, Simulator
from .topology import Topology

__all__ = ["Network", "NetworkStats", "CONTROL_MSG_BYTES"]

CONTROL_MSG_BYTES = 256


@dataclass
class NetworkStats:
    """Aggregate counters, inspected by the locality experiments."""

    transfers: int = 0
    messages: int = 0
    bytes_moved: int = 0
    bytes_by_link: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record(self, hops, nbytes: int, is_message: bool) -> None:
        if is_message:
            self.messages += 1
        else:
            self.transfers += 1
            self.bytes_moved += nbytes
        for hop in hops:
            key = tuple(sorted(hop))
            self.bytes_by_link[key] = self.bytes_by_link.get(key, 0) + nbytes

    def reset(self) -> None:
        self.transfers = 0
        self.messages = 0
        self.bytes_moved = 0
        self.bytes_by_link.clear()


class Network:
    """Executes transfers as simulation processes."""

    def __init__(self, sim: Simulator, topology: Topology):
        self.sim = sim
        self.topology = topology
        self.stats = NetworkStats()
        self._link_slots: Dict[Tuple[str, str], Resource] = {}

    def _slot(self, a: str, b: str) -> Resource:
        key = tuple(sorted((a, b)))
        slot = self._link_slots.get(key)
        if slot is None:
            slot = Resource(self.sim, capacity=1, name=f"link:{key[0]}<->{key[1]}")
            self._link_slots[key] = slot
        return slot

    def transfer(self, src: str, dst: str, nbytes: int, label: str = "xfer") -> Process:
        """Move ``nbytes`` from ``src`` to ``dst``; returns the process.

        Zero-hop transfers (src == dst) complete after a zero timeout so
        callers can always ``yield`` the result uniformly.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        hops = self.topology.route(src, dst)
        self.stats.record(hops, nbytes, is_message=False)

        def _move() -> Generator:
            for a, b in hops:
                link = self.topology.link(a, b)
                slot = self._slot(a, b)
                yield slot.request()
                try:
                    yield self.sim.timeout(nbytes / link.bandwidth)
                finally:
                    slot.release()
                yield self.sim.timeout(link.latency)
            return nbytes

        return self.sim.process(_move(), name=f"net:{label}:{src}->{dst}")

    def message(self, src: str, dst: str, label: str = "msg") -> Process:
        """A small control-plane message (fixed frame, latency-dominated)."""
        hops = self.topology.route(src, dst)
        self.stats.record(hops, CONTROL_MSG_BYTES, is_message=True)

        def _send() -> Generator:
            for a, b in hops:
                link = self.topology.link(a, b)
                yield self.sim.timeout(link.transfer_time(CONTROL_MSG_BYTES))
            return None

        return self.sim.process(_send(), name=f"net:{label}:{src}->{dst}")

    def rpc(self, src: str, dst: str, label: str = "rpc") -> Process:
        """Request/response control-message pair (two one-way messages)."""

        def _roundtrip() -> Generator:
            yield self.message(src, dst, label=f"{label}:req")
            yield self.message(dst, src, label=f"{label}:rsp")
            return None

        return self.sim.process(_roundtrip(), name=f"net:{label}:{src}<->{dst}")

    def transfer_time_estimate(self, src: str, dst: str, nbytes: int) -> float:
        """Uncontended analytic estimate (used by placement cost models)."""
        hops = self.topology.route(src, dst)
        return sum(self.topology.link(a, b).transfer_time(nbytes) for a, b in hops)
