"""Simulated disaggregated data-center substrate.

The paper evaluates on DPU-fronted disaggregated devices the authors built
in-house; this package is the substitution: a deterministic discrete-event
model of servers, DPU cards, accelerators, memory blades, and the links
between them (see DESIGN.md, "Hardware / dependency substitutions").
"""

from .cluster import (
    Cluster,
    build_logical_disagg,
    build_physical_disagg,
    build_serverful,
    build_tightly_coupled,
)
from .durable import DurableStats, DurableStore
from .hardware import (
    CPU_SERVER_SPEC,
    DPU_SPEC,
    FPGA_SPEC,
    GB,
    GPU_SPEC,
    KB,
    MB,
    MEMORY_BLADE_SPEC,
    MSEC,
    USEC,
    Device,
    DeviceKind,
    DeviceSpec,
)
from .network import CONTROL_MSG_BYTES, Network, NetworkStats
from .node import Node, NodeKind
from .simtime import (
    AllOf,
    AnyOf,
    Channel,
    Interrupt,
    Process,
    Resource,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)
from .topology import (
    FABRIC_LINK,
    NIC_LINK,
    ONCHIP_LINK,
    PCIE_LINK,
    TIGHT_LINK,
    LinkSpec,
    Topology,
)

__all__ = [
    "Cluster",
    "build_serverful",
    "build_logical_disagg",
    "build_physical_disagg",
    "build_tightly_coupled",
    "DurableStore",
    "DurableStats",
    "Device",
    "DeviceKind",
    "DeviceSpec",
    "CPU_SERVER_SPEC",
    "GPU_SPEC",
    "FPGA_SPEC",
    "DPU_SPEC",
    "MEMORY_BLADE_SPEC",
    "KB",
    "MB",
    "GB",
    "USEC",
    "MSEC",
    "Network",
    "NetworkStats",
    "CONTROL_MSG_BYTES",
    "Node",
    "NodeKind",
    "Simulator",
    "Process",
    "Timeout",
    "Signal",
    "AllOf",
    "AnyOf",
    "Resource",
    "Channel",
    "SimulationError",
    "Interrupt",
    "Topology",
    "LinkSpec",
    "ONCHIP_LINK",
    "PCIE_LINK",
    "NIC_LINK",
    "FABRIC_LINK",
    "TIGHT_LINK",
]
