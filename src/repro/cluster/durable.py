"""Durable cloud storage model (the S3-like service of Figure 1b).

Stateless serverless functions bounce intermediate data through this
service; the distributed runtime's caching layer exists precisely to avoid
that.  The model charges a fixed per-request latency, a serialization time
at modest bandwidth, and an accounting cost in dollars so the deployment
benchmark (F1) can report both time and cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator

from .hardware import GB, MSEC
from .simtime import Process, Simulator

__all__ = ["DurableStore", "DurableStats"]


@dataclass
class DurableStats:
    puts: int = 0
    gets: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    @property
    def round_trips(self) -> int:
        return self.puts + self.gets

    def request_cost_dollars(self, per_1k_requests: float = 0.005) -> float:
        return self.round_trips / 1000.0 * per_1k_requests


class DurableStore:
    """High-latency durable KV storage with real value retention."""

    def __init__(
        self,
        sim: Simulator,
        request_latency: float = 10 * MSEC,
        bandwidth: float = 0.1 * GB,
    ):
        if request_latency < 0 or bandwidth <= 0:
            raise ValueError("invalid durable store parameters")
        self.sim = sim
        self.request_latency = request_latency
        self.bandwidth = bandwidth
        self.stats = DurableStats()
        self._data: Dict[str, tuple[Any, int]] = {}

    def _io_time(self, nbytes: int) -> float:
        return self.request_latency + nbytes / self.bandwidth

    def put(self, key: str, value: Any, nbytes: int) -> Process:
        if nbytes < 0:
            raise ValueError(f"negative object size: {nbytes}")
        self.stats.puts += 1
        self.stats.bytes_written += nbytes

        def _put() -> Generator:
            yield self.sim.timeout(self._io_time(nbytes))
            self._data[key] = (value, nbytes)
            return key

        return self.sim.process(_put(), name=f"durable:put:{key}")

    def get(self, key: str) -> Process:
        def _get() -> Generator:
            if key not in self._data:
                raise KeyError(f"durable object {key!r} not found")
            value, nbytes = self._data[key]
            self.stats.gets += 1
            self.stats.bytes_read += nbytes
            yield self.sim.timeout(self._io_time(nbytes))
            return value

        return self.sim.process(_get(), name=f"durable:get:{key}")

    def contains(self, key: str) -> bool:
        return key in self._data

    def size_of(self, key: str) -> int:
        if key not in self._data:
            raise KeyError(f"durable object {key!r} not found")
        return self._data[key][1]
