"""Nodes: servers, physically-disaggregated device cards, memory blades.

A node groups one or more :class:`~repro.cluster.hardware.Device` instances
behind a single network attachment point.  On a regular server the CPU is
the attachment point; on a disaggregated card the DPU is (Figure 3); on a
memory blade the blade controller is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .hardware import Device, DeviceKind

__all__ = ["NodeKind", "Node"]


class NodeKind(enum.Enum):
    SERVER = "server"
    DISAGG_DEVICE = "disagg_device"  # DPU + dominant resource (GPU/FPGA/DRAM)
    MEMORY_BLADE = "memory_blade"
    ACCELERATOR = "accelerator"  # tightly-coupled cluster member


@dataclass
class Node:
    node_id: str
    kind: NodeKind
    devices: List[Device] = field(default_factory=list)

    def add_device(self, device: Device) -> None:
        self.devices.append(device)

    def device_by_id(self, device_id: str) -> Device:
        for dev in self.devices:
            if dev.device_id == device_id:
                return dev
        raise KeyError(f"no device {device_id!r} on node {self.node_id!r}")

    def devices_of_kind(self, kind: DeviceKind) -> List[Device]:
        return [d for d in self.devices if d.kind == kind]

    def first_of_kind(self, kind: DeviceKind) -> Optional[Device]:
        matches = self.devices_of_kind(kind)
        return matches[0] if matches else None

    @property
    def attachment_device(self) -> Device:
        """The device that terminates the node's network link."""
        preferred = {
            NodeKind.SERVER: DeviceKind.CPU,
            NodeKind.DISAGG_DEVICE: DeviceKind.DPU,
            NodeKind.MEMORY_BLADE: DeviceKind.MEMORY_BLADE,
            NodeKind.ACCELERATOR: DeviceKind.GPU,
        }[self.kind]
        dev = self.first_of_kind(preferred)
        if dev is None:
            if not self.devices:
                raise ValueError(f"node {self.node_id!r} has no devices")
            dev = self.devices[0]
        return dev

    @property
    def attachment_endpoint(self) -> str:
        return self.attachment_device.device_id

    @property
    def dominant_device(self) -> Device:
        """The device a scheduler targets when placing work on this node.

        For a disaggregated card that is the companion accelerator/DRAM,
        not the DPU fronting it.
        """
        if self.kind == NodeKind.DISAGG_DEVICE:
            for dev in self.devices:
                if dev.kind != DeviceKind.DPU:
                    return dev
        return self.attachment_device

    @property
    def total_memory(self) -> int:
        return sum(d.spec.memory_bytes for d in self.devices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ",".join(d.kind.value for d in self.devices)
        return f"Node({self.node_id}, {self.kind.value}, [{kinds}])"
