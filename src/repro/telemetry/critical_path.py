"""Critical-path extraction over the finished span graph.

Walks backward from a target task span through the causal links (each task
span links to the spans of its input producers), always following the
gating producer — the one whose output arrived last.  The walk yields a
contiguous chain of time segments from the first submission to the final
result, and each segment is attributed to one of four buckets:

* **compute**  — device-seconds actually executing the payload;
* **transfer** — argument resolution: pull round-trips / push arrivals
  plus the bulk bytes on the fabric;
* **queue**    — waiting for dispatch, device slots, or actor serialization;
* **recovery** — lineage replays and retry backoff: any time on the path
  that exists only because something failed.

This attribution is what turns "the pipeline is slow" into "62% of the
end-to-end latency is transfer, switch resolution to push" — the E18
benchmark asserts exactly that shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from .spans import Span

__all__ = ["PathSegment", "CriticalPathResult", "critical_path"]

ATTRIBUTION_BUCKETS = ("compute", "transfer", "queue", "recovery")

_EPS = 1e-15  # segments shorter than this are dropped (float noise)


@dataclass(frozen=True)
class PathSegment:
    """One attributed slice of the end-to-end latency."""

    task_id: str
    name: str
    category: str  # one of ATTRIBUTION_BUCKETS
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathResult:
    """The extracted path plus its latency attribution."""

    target_span_id: str
    segments: List[PathSegment]
    total: float
    breakdown: Dict[str, float]

    @property
    def fractions(self) -> Dict[str, float]:
        if self.total <= 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / self.total for k, v in self.breakdown.items()}

    def task_ids(self) -> List[str]:
        """Tasks on the path, in execution order (deduplicated)."""
        seen: List[str] = []
        for seg in self.segments:
            if not seen or seen[-1] != seg.task_id:
                seen.append(seg.task_id)
        return seen


def _phases(span: Span) -> List[tuple]:
    """A task span's internal milestones as (start, end, bucket) windows."""
    submitted = span.start
    dispatched = span.attrs.get("dispatched", span.start)
    inputs_ready = span.attrs.get("inputs_ready", dispatched)
    started = span.attrs.get("started", inputs_ready)
    finished = span.end
    return [
        (submitted, dispatched, "queue"),  # scheduling + lease + retry backoff
        (dispatched, inputs_ready, "transfer"),  # argument resolution
        (inputs_ready, started, "queue"),  # device slot / actor lock wait
        (started, finished, "compute"),
    ]


def _bucket(span: Span, phase_bucket: str) -> str:
    """Map a phase to its attribution bucket, folding in failure history.

    Replayed tasks exist only because an object was lost: everything they
    spend is recovery.  A task that needed retries spent its pre-dispatch
    window on failed attempts and backoff, so its queue share is recovery
    too (the final attempt's transfer and compute remain genuinely that).
    """
    if span.attrs.get("replayed"):
        return "recovery"
    if phase_bucket == "queue" and span.attrs.get("retries", 0):
        return "recovery"
    return phase_bucket


def critical_path(
    spans: Sequence[Span],
    target: Union[Span, str],
) -> CriticalPathResult:
    """Extract the critical path ending at ``target`` (a task span or id).

    Only finished ``category == "task"`` spans participate; the chain
    follows, at each task, the producer link whose span finished last (the
    input that actually gated readiness).  Each task contributes the
    window between that gate and its own finish, split by milestone.
    """
    index: Dict[str, Span] = {s.span_id: s for s in spans}
    if isinstance(target, str):
        if target not in index:
            raise KeyError(f"unknown span {target!r}")
        target = index[target]
    if target.category != "task":
        raise ValueError(f"critical path target must be a task span, got {target.category!r}")
    if target.is_open:
        raise ValueError(f"span {target.span_id} ({target.name}) is still open")

    chain: List[List[PathSegment]] = []  # one group per task, newest first
    cur: Optional[Span] = target
    visited = set()
    while cur is not None:
        if cur.span_id in visited:  # defensive: malformed link cycles
            break
        visited.add(cur.span_id)
        gate_span: Optional[Span] = None
        for link_id in cur.links:
            producer = index.get(link_id)
            if producer is None or producer.is_open or producer.category != "task":
                continue
            if gate_span is None or producer.end > gate_span.end:
                gate_span = producer
        lo = max(cur.start, gate_span.end) if gate_span is not None else cur.start
        task_id = str(cur.attrs.get("task_id", cur.span_id))
        group: List[PathSegment] = []
        for a, b, phase in _phases(cur):
            a = max(a, lo)
            if b - a <= _EPS:
                continue
            group.append(PathSegment(task_id, cur.name, _bucket(cur, phase), a, b))
        chain.append(group)
        cur = gate_span
    # reverse the task order only — phases within a task are already forward
    segments: List[PathSegment] = [seg for group in reversed(chain) for seg in group]

    breakdown = {k: 0.0 for k in ATTRIBUTION_BUCKETS}
    for seg in segments:
        breakdown[seg.category] += seg.duration
    total = (target.end - segments[0].start) if segments else 0.0
    return CriticalPathResult(
        target_span_id=target.span_id,
        segments=segments,
        total=total,
        breakdown=breakdown,
    )
