"""Causal span tracing: one user call yields a linked tree across nodes.

Every task, actor call, object transfer, and lineage replay opens a
:class:`Span` carrying a propagated trace id and parent/link span ids, so
the finished span graph records *why* each piece of work ran, not just
when.  The critical-path extractor and the Chrome-trace flow arrows are
both built on this graph.

Ids are sequential (``trace-0001``, ``span-000001``) and timestamps come
from the simulator clock, so traces are deterministic under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = ["Span", "Tracer", "SPAN_CATEGORIES"]

# the attribution buckets critical-path analysis resolves spans into
SPAN_CATEGORIES = ("task", "compute", "transfer", "queue", "recovery", "control")


@dataclass
class Span:
    """One timed, causally-linked unit of work."""

    trace_id: str
    span_id: str
    name: str
    category: str
    start: float
    end: float = math.nan  # NaN while open
    parent_id: Optional[str] = None
    links: Tuple[str, ...] = ()  # extra causal parents (multi-input tasks)
    node: str = ""
    device: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_open(self) -> bool:
        return math.isnan(self.end)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def finish(self, end: float) -> "Span":
        if not self.is_open:
            raise RuntimeError(f"span {self.span_id} ({self.name}) already finished")
        if end < self.start:
            raise ValueError(f"span {self.span_id} ends before it starts")
        self.end = end
        return self


class Tracer:
    """Records spans; hands out deterministic trace/span ids."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self.spans: List[Span] = []
        self._n_traces = 0
        self._n_spans = 0

    # -- id minting ----------------------------------------------------------

    def new_trace_id(self) -> str:
        self._n_traces += 1
        return f"trace-{self._n_traces:04d}"

    def _new_span_id(self) -> str:
        self._n_spans += 1
        return f"span-{self._n_spans:06d}"

    # -- span lifecycle ------------------------------------------------------

    def start_span(
        self,
        name: str,
        category: str,
        *,
        parent: Union[Span, str, None] = None,
        trace_id: Optional[str] = None,
        links: Tuple[str, ...] = (),
        node: str = "",
        device: str = "",
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  Trace id propagates parent → child unless given."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        if trace_id is None:
            if isinstance(parent, Span):
                trace_id = parent.trace_id
            else:
                trace_id = self.new_trace_id()
        span = Span(
            trace_id=trace_id,
            span_id=self._new_span_id(),
            name=name,
            category=category,
            start=self._clock() if start is None else start,
            parent_id=parent_id,
            links=tuple(links),
            node=node,
            device=device,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    def emit(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        *,
        parent: Union[Span, str, None] = None,
        trace_id: Optional[str] = None,
        links: Tuple[str, ...] = (),
        node: str = "",
        device: str = "",
        **attrs: Any,
    ) -> Span:
        """Record an already-finished span in one call."""
        span = self.start_span(
            name,
            category,
            parent=parent,
            trace_id=trace_id,
            links=links,
            node=node,
            device=device,
            start=start,
            **attrs,
        )
        return span.finish(end)

    # -- queries -------------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if not s.is_open]

    def spans_in_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def children_of(self, span_id: str) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def by_id(self) -> Dict[str, Span]:
        return {s.span_id: s for s in self.spans}

    def __len__(self) -> int:
        return len(self.spans)
