"""Per-run telemetry summary tables (reuses the bench ResultTable look).

``TelemetryReport`` renders a runtime's metrics plane — task counts and
latency quantiles, object-store traffic, per-link fabric utilization,
incident counts — and optionally a critical-path attribution table, in
the same fixed-column style the paper-table benchmarks print.
"""

from __future__ import annotations

from typing import List, Optional

# import the module, not the package: repro.bench.__init__ pulls in
# workload builders that sit above this layer
from ..bench.harness import ResultTable, fmt_bytes, fmt_seconds
from .critical_path import ATTRIBUTION_BUCKETS, CriticalPathResult
from .metrics import MetricsRegistry

__all__ = ["TelemetryReport", "link_utilization"]


def link_utilization(registry: MetricsRegistry, elapsed: float, link: str) -> float:
    """Fraction of the run a link spent serializing bytes."""
    if elapsed <= 0:
        return 0.0
    busy = registry.value("skadi_link_busy_seconds_total", link=link)
    return busy / elapsed


class TelemetryReport:
    """Summary tables over a :class:`ServerlessRuntime`'s telemetry."""

    def __init__(self, runtime, critical_path: Optional[CriticalPathResult] = None):
        self.runtime = runtime
        self.registry: MetricsRegistry = runtime.telemetry.registry
        self.critical_path = critical_path

    # -- tables --------------------------------------------------------------

    def task_table(self) -> ResultTable:
        reg = self.registry
        table = ResultTable(
            "telemetry: tasks", ["metric", "count"]
        )
        for label, name in (
            ("submitted", "skadi_tasks_submitted_total"),
            ("finished", "skadi_tasks_finished_total"),
            ("failed", "skadi_tasks_failed_total"),
            ("retried", "skadi_tasks_retried_total"),
            ("speculated", "skadi_speculations_total"),
            ("lineage replays", "skadi_lineage_replays_total"),
            ("actor restarts", "skadi_actor_restarts_total"),
        ):
            table.add_row(label, int(reg.value(name)))
        return table

    def latency_table(self) -> ResultTable:
        table = ResultTable(
            "telemetry: task latency", ["histogram", "count", "p50", "p95", "p99"]
        )
        for name in ("skadi_task_latency_seconds", "skadi_task_input_stall_seconds"):
            family = self.registry.family(name)
            if family is None:
                continue
            for inst in family.instruments():
                table.add_row(
                    name,
                    inst.count,
                    fmt_seconds(inst.percentile(0.5)) if inst.count else "-",
                    fmt_seconds(inst.percentile(0.95)) if inst.count else "-",
                    fmt_seconds(inst.percentile(0.99)) if inst.count else "-",
                )
        return table

    def network_table(self) -> ResultTable:
        reg = self.registry
        elapsed = self.runtime.sim.now
        table = ResultTable(
            "telemetry: fabric links",
            ["link", "bytes", "messages", "busy", "utilization"],
        )
        bytes_family = reg.family("skadi_link_bytes_total")
        if bytes_family is None:
            return table
        for inst in bytes_family.instruments():
            link = inst.labels_dict.get("link", "")
            table.add_row(
                link,
                fmt_bytes(inst.value),
                int(reg.value("skadi_link_messages_total", link=link)),
                fmt_seconds(reg.value("skadi_link_busy_seconds_total", link=link)),
                f"{link_utilization(reg, elapsed, link):.1%}",
            )
        return table

    def incident_table(self) -> ResultTable:
        table = ResultTable("telemetry: incidents", ["kind", "count"])
        family = self.registry.family("skadi_incidents_total")
        if family is not None:
            for inst in family.instruments():
                table.add_row(inst.labels_dict.get("kind", "?"), int(inst.value))
        return table

    def critical_path_table(self) -> Optional[ResultTable]:
        if self.critical_path is None:
            return None
        result = self.critical_path
        table = ResultTable(
            "telemetry: critical-path attribution",
            ["bucket", "time", "fraction"],
        )
        fractions = result.fractions
        for bucket in ATTRIBUTION_BUCKETS:
            table.add_row(
                bucket,
                fmt_seconds(result.breakdown[bucket]),
                f"{fractions[bucket]:.1%}",
            )
        table.add_row("total", fmt_seconds(result.total), "100.0%")
        return table

    def tables(self) -> List[ResultTable]:
        tables = [
            self.task_table(),
            self.latency_table(),
            self.network_table(),
            self.incident_table(),
        ]
        cp = self.critical_path_table()
        if cp is not None:
            tables.append(cp)
        return tables

    # -- rendering -----------------------------------------------------------

    def to_text(self) -> str:
        return "\n\n".join(t.to_text() for t in self.tables())

    def show(self) -> None:
        print()
        print(self.to_text())
