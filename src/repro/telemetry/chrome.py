"""Chrome-trace event generation from spans and metric time series.

Two additions over the timeline-only exporter in ``repro.runtime.trace``:

* **flow arrows** — every causal link between task spans becomes a paired
  ``"s"`` (start, at the producer's finish) / ``"f"`` (finish, at the
  consumer's resume) flow event, so Perfetto draws the arrows that make a
  distributed DAG legible;
* **counter events** — every gauge sample becomes a ``"C"`` event, so
  queue depths, bytes resident, and outstanding tasks render as stacked
  area charts under the span rows.
"""

from __future__ import annotations

from typing import List, Sequence

from .metrics import MetricsRegistry
from .spans import Span

__all__ = ["spans_to_chrome_events", "counters_to_chrome_events"]


def _pid(span: Span) -> str:
    return span.node or "driver"


def _tid(span: Span) -> str:
    return span.device or span.category


def spans_to_chrome_events(spans: Sequence[Span], flows: bool = True) -> List[dict]:
    """Finished spans as complete ("X") events plus causal flow arrows."""
    events: List[dict] = []
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        if span.is_open:
            continue
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(span.duration * 1e6, 0.01),
                "pid": _pid(span),
                "tid": _tid(span),
                "args": {
                    "span_id": span.span_id,
                    "trace_id": span.trace_id,
                    "parent_id": span.parent_id or "",
                    **{k: repr(v) for k, v in sorted(span.attrs.items())},
                },
            }
        )
    if not flows:
        return events
    flow_id = 0
    for span in spans:
        if span.is_open:
            continue
        for link_id in span.links:
            producer = by_id.get(link_id)
            if producer is None or producer.is_open:
                continue
            flow_id += 1
            common = {"name": "causal", "cat": "flow", "id": flow_id}
            events.append(
                {
                    **common,
                    "ph": "s",
                    "ts": producer.end * 1e6,
                    "pid": _pid(producer),
                    "tid": _tid(producer),
                }
            )
            events.append(
                {
                    **common,
                    "ph": "f",
                    "bp": "e",  # bind to the enclosing slice
                    "ts": max(span.start, producer.end) * 1e6,
                    "pid": _pid(span),
                    "tid": _tid(span),
                }
            )
    return events


def counters_to_chrome_events(
    registry: MetricsRegistry, pid: str = "metrics"
) -> List[dict]:
    """Every gauge sample as a counter ("C") event on a metrics process."""
    events: List[dict] = []
    for family in registry.families():
        if family.kind != "gauge":
            continue
        for inst in family.instruments():
            labels = inst.labels_dict
            suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            series = family.name + suffix
            events.extend(
                {
                    "name": series,
                    "cat": "metric",
                    "ph": "C",
                    "ts": t * 1e6,
                    "pid": pid,
                    "args": {"value": value},
                }
                for t, value in inst.samples
            )
    return events
