"""Sim-time-stamped metrics: counters, gauges, and histograms with labels.

The registry is the cluster-wide metrics plane (Ray ships this as a
first-class subsystem; Dask's overhead study shows why it matters): every
hot path — scheduler placements, raylet dispatch, object-store traffic,
per-link fabric bytes, heartbeats/retries/replays — increments instruments
here, stamped with *virtual* time from the simulator clock.  Because the
clock is deterministic, the metrics output itself is assertable in tests:
two identically-seeded runs export byte-identical snapshots.

Instruments are identified by ``(name, labels)``; the registry
get-or-creates on access so call sites stay one-liners::

    registry.counter("skadi_link_bytes_total", link="a<->b").inc(nbytes)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]

DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Instrument:
    """Base: a named, labelled time series point."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelKey, clock: Callable[[], float]):
        self.name = name
        self.labels = labels
        self._clock = clock
        self.last_updated = 0.0

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def _touch(self) -> None:
        self.last_updated = self._clock()


class Counter(Instrument):
    """Monotonically increasing count (events, bytes, messages)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey, clock: Callable[[], float]):
        super().__init__(name, labels, clock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount
        self._touch()


class Gauge(Instrument):
    """A value that goes up and down (queue depth, bytes resident).

    Every ``set`` records a ``(sim_time, value)`` sample, so the full
    time series is available for Chrome-trace counter ("C") events.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey, clock: Callable[[], float]):
        super().__init__(name, labels, clock)
        self.value = 0.0
        self.samples: List[Tuple[float, float]] = []

    def set(self, value: float) -> None:
        self.value = float(value)
        self._touch()
        # coalesce same-instant updates: only the final value at a given
        # virtual time is observable
        if self.samples and self.samples[-1][0] == self.last_updated:
            self.samples[-1] = (self.last_updated, self.value)
        else:
            self.samples.append((self.last_updated, self.value))

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram(Instrument):
    """Distribution summary with exact nearest-rank percentiles.

    The simulation is small enough to keep raw observations, so p50/p95/p99
    are exact rather than bucket-approximated.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey, clock: Callable[[], float]):
        super().__init__(name, labels, clock)
        self._values: List[float] = []
        self._sorted = True
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = False
        self.sum += value
        self._touch()

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def value(self) -> float:
        """For uniform collection: a histogram's scalar value is its count."""
        return float(self.count)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 1].  NaN when empty."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {p}")
        if not self._values:
            return float("nan")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, min(len(self._values) - 1, round(p * len(self._values)) - 1))
        if p == 0.0:
            rank = 0
        return self._values[rank]

    def quantiles(self, qs: Iterable[float] = DEFAULT_QUANTILES) -> Dict[float, float]:
        return {q: self.percentile(q) for q in qs}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All instruments sharing one metric name (one per label set)."""

    def __init__(self, name: str, kind: str, help: str = ""):
        self.name = name
        self.kind = kind
        self.help = help
        self._instruments: Dict[LabelKey, Instrument] = {}

    def instruments(self) -> List[Instrument]:
        return [self._instruments[k] for k in sorted(self._instruments)]

    def get(self, key: LabelKey) -> Optional[Instrument]:
        return self._instruments.get(key)

    def __len__(self) -> int:
        return len(self._instruments)


class MetricsRegistry:
    """The cluster-wide metric store; deterministic iteration order."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self._families: Dict[str, MetricFamily] = {}

    # -- get-or-create accessors --------------------------------------------

    def _instrument(self, kind: str, name: str, help: str, labels: Dict[str, Any]):
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        if help and not family.help:
            family.help = help
        key = _label_key(labels)
        inst = family.get(key)
        if inst is None:
            inst = _KINDS[kind](name, key, self._clock)
            family._instruments[key] = inst
        return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._instrument("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._instrument("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "", **labels: Any) -> Histogram:
        return self._instrument("histogram", name, help, labels)

    # -- introspection -------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def get(self, name: str, **labels: Any) -> Optional[Instrument]:
        family = self._families.get(name)
        if family is None:
            return None
        return family.get(_label_key(labels))

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Scalar value of one instrument (counters/gauges: value;
        histograms: observation count).  ``default`` when absent."""
        inst = self.get(name, **labels)
        return default if inst is None else float(inst.value)

    def __len__(self) -> int:
        return len(self._families)
