"""repro.telemetry — the cluster-wide observability plane.

Three layers, mirroring what Ray ships as a first-class subsystem and
what Dask's overhead studies show is needed to turn anecdotes into
optimization targets:

* :mod:`repro.telemetry.metrics` — sim-time-stamped counters, gauges, and
  histograms (exact p50/p95/p99, label sets), instrumented into the
  scheduler, raylets, object stores, fabric links, and the health layer;
* :mod:`repro.telemetry.spans`   — causal span tracing: every task, actor
  call, transfer, and lineage replay carries a propagated trace/parent
  id, so one user call yields a linked tree across nodes;
* analysis on top — :mod:`repro.telemetry.critical_path` attributes
  end-to-end latency to compute/transfer/queue/recovery,
  :mod:`repro.telemetry.prometheus` round-trips the registry through the
  standard text format, :mod:`repro.telemetry.chrome` adds flow arrows
  and counter events to Chrome traces, and
  :mod:`repro.telemetry.report` prints paper-style summary tables.

Everything is deterministic under a fixed seed: timestamps come from the
simulator clock, ids are sequential, and exports are sorted — telemetry
output itself is assertable in tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from .chrome import counters_to_chrome_events, spans_to_chrome_events
from .critical_path import (
    ATTRIBUTION_BUCKETS,
    CriticalPathResult,
    PathSegment,
    critical_path,
)
from .metrics import Counter, Gauge, Histogram, MetricFamily, MetricsRegistry
from .prometheus import ParsedMetrics, parse_prometheus_text, to_prometheus_text
from .spans import SPAN_CATEGORIES, Span, Tracer

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "Tracer",
    "SPAN_CATEGORIES",
    "critical_path",
    "CriticalPathResult",
    "PathSegment",
    "ATTRIBUTION_BUCKETS",
    "to_prometheus_text",
    "parse_prometheus_text",
    "ParsedMetrics",
    "spans_to_chrome_events",
    "counters_to_chrome_events",
    "TelemetryReport",
    "link_utilization",
]


class Telemetry:
    """One runtime's telemetry bundle: a registry plus a tracer, sharing
    the simulator clock so every datum is stamped in virtual time."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.registry = MetricsRegistry(clock=clock)
        self.tracer = Tracer(clock=clock)


def __getattr__(name: str):
    # .report reuses the bench harness tables, and repro.bench pulls in
    # workload builders that import the runtime — which imports this
    # package.  Resolving the report lazily keeps the layering acyclic.
    if name in ("TelemetryReport", "link_utilization"):
        from . import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
