"""Prometheus text exposition for the metrics registry, plus a parser.

The exporter emits the standard ``# HELP`` / ``# TYPE`` framed text
format; histograms are exposed as summaries with exact p50/p95/p99
quantile labels.  The parser exists so tests (and the E18 benchmark) can
round-trip an export and assert on the parsed values — the telemetry
plane's own output is part of the determinism contract.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .metrics import DEFAULT_QUANTILES, MetricsRegistry

__all__ = ["to_prometheus_text", "parse_prometheus_text", "ParsedMetrics"]

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+([^\s]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Serialize every family in deterministic (sorted) order."""
    lines: List[str] = []
    for family in registry.families():
        exposed_kind = "summary" if family.kind == "histogram" else family.kind
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {exposed_kind}")
        for inst in family.instruments():
            labels = inst.labels_dict
            if family.kind == "histogram":
                for q in DEFAULT_QUANTILES:
                    q_labels = dict(labels, quantile=str(q))
                    lines.append(
                        f"{family.name}{_fmt_labels(q_labels)} "
                        f"{_fmt_value(inst.percentile(q))}"
                    )
                lines.append(
                    f"{family.name}_sum{_fmt_labels(labels)} {_fmt_value(inst.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_fmt_labels(labels)} {_fmt_value(inst.count)}"
                )
            else:
                lines.append(
                    f"{family.name}{_fmt_labels(labels)} {_fmt_value(inst.value)}"
                )
    return "\n".join(lines) + "\n"


@dataclass
class ParsedMetrics:
    """A parsed exposition: types, helps, and all samples."""

    types: Dict[str, str] = field(default_factory=dict)
    helps: Dict[str, str] = field(default_factory=dict)
    samples: List[Tuple[str, Dict[str, str], float]] = field(default_factory=list)

    def value(self, name: str, **labels: str) -> float:
        """The sample matching name + exact label set; KeyError if absent."""
        want = {k: str(v) for k, v in labels.items()}
        for sample_name, sample_labels, value in self.samples:
            if sample_name == name and sample_labels == want:
                return value
        raise KeyError(f"no sample {name!r} with labels {want!r}")

    def series(self, name: str) -> List[Tuple[Dict[str, str], float]]:
        return [(lbl, v) for n, lbl, v in self.samples if n == name]

    def names(self) -> List[str]:
        return sorted({n for n, _, _ in self.samples})


def parse_prometheus_text(text: str) -> ParsedMetrics:
    """Parse an exposition produced by :func:`to_prometheus_text`."""
    parsed = ParsedMetrics()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            parsed.types[name] = kind.strip()
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            parsed.helps[name] = help_text
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable metric line: {raw!r}")
        name, label_blob, value = match.groups()
        labels = {
            k: _unescape(v) for k, v in _LABEL_RE.findall(label_blob or "")
        }
        parsed.samples.append((name, labels, float(value)))
    return parsed
