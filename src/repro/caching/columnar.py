"""The shared columnar format (the paper's Apache Arrow substitute).

Claim exercised (E3): "A shared format such as Arrow enables functions
running on heterogeneous devices to exchange data without costly data
marshalling, hence reducing the cost paid per transfer."

A :class:`RecordBatch` stores columns as contiguous numpy arrays.  The
*columnar* wire format writes a tiny JSON header plus the raw column
buffers, so deserialization is an O(columns) buffer wrap (zero-copy).
The *marshalling* baseline is pickle of a row-oriented representation,
which is O(rows) on both ends — the asymmetry the benchmark measures.
"""

from __future__ import annotations

import json
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Field",
    "Schema",
    "RecordBatch",
    "concat_batches",
    "serialize_columnar",
    "deserialize_columnar",
    "serialize_marshalled",
    "deserialize_marshalled",
]

_MAGIC = b"SKDI"
_SUPPORTED_KINDS = ("i", "u", "f", "b")  # int, uint, float, bool


@dataclass(frozen=True)
class Field:
    """A named, typed column."""

    name: str
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.dtype.kind not in _SUPPORTED_KINDS:
            raise TypeError(
                f"unsupported dtype {self.dtype} for field {self.name!r}; "
                f"supported kinds: {_SUPPORTED_KINDS}"
            )


class Schema:
    """An ordered collection of fields."""

    def __init__(self, fields: Iterable[Field]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        self._index = {f.name: i for i, f in enumerate(self.fields)}

    @property
    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        try:
            return self.fields[self._index[name]]
        except KeyError:
            raise KeyError(f"no column {name!r}; have {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.name}:{f.dtype}" for f in self.fields)
        return f"Schema({cols})"

    @classmethod
    def from_arrays(cls, columns: Mapping[str, np.ndarray]) -> "Schema":
        return cls(Field(name, arr.dtype) for name, arr in columns.items())


class RecordBatch:
    """An immutable batch of equal-length columns.

    Slicing and column projection return zero-copy numpy views; this is what
    makes the shared format cheap to pass between "devices" in-process.
    """

    def __init__(self, schema: Schema, columns: Sequence[np.ndarray]):
        columns = [np.asarray(c) for c in columns]
        if len(columns) != len(schema):
            raise ValueError(
                f"schema has {len(schema)} fields but got {len(columns)} columns"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        for field, col in zip(schema.fields, columns, strict=False):
            if col.dtype != field.dtype:
                raise TypeError(
                    f"column {field.name!r} has dtype {col.dtype}, schema says {field.dtype}"
                )
            if col.ndim != 1:
                raise ValueError(f"column {field.name!r} must be 1-D, got {col.ndim}-D")
        self.schema = schema
        self._columns = tuple(columns)
        self.num_rows = len(columns[0]) if columns else 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_pydict(cls, data: Mapping[str, Sequence[Any]]) -> "RecordBatch":
        arrays = {name: np.asarray(values) for name, values in data.items()}
        for name, arr in arrays.items():
            if arr.dtype.kind not in _SUPPORTED_KINDS:
                raise TypeError(f"column {name!r}: unsupported dtype {arr.dtype}")
        return cls(Schema.from_arrays(arrays), list(arrays.values()))

    @classmethod
    def from_arrays(cls, columns: Mapping[str, np.ndarray]) -> "RecordBatch":
        return cls(Schema.from_arrays(columns), list(columns.values()))

    @classmethod
    def empty(cls, schema: Schema) -> "RecordBatch":
        return cls(schema, [np.empty(0, dtype=f.dtype) for f in schema.fields])

    # -- access ------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        for field, col in zip(self.schema.fields, self._columns, strict=False):
            if field.name == name:
                return col
        raise KeyError(f"no column {name!r}; have {self.schema.names}")

    def columns(self) -> Dict[str, np.ndarray]:
        return {f.name: c for f, c in zip(self.schema.fields, self._columns, strict=False)}

    def __len__(self) -> int:
        return self.num_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordBatch):
            return NotImplemented
        if self.schema != other.schema or self.num_rows != other.num_rows:
            return False
        return all(np.array_equal(a, b) for a, b in zip(self._columns, other._columns, strict=False))

    def __hash__(self) -> int:  # batches are value-like but unhashable
        raise TypeError("RecordBatch is unhashable")

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._columns)

    def to_pydict(self) -> Dict[str, List[Any]]:
        return {f.name: c.tolist() for f, c in zip(self.schema.fields, self._columns, strict=False)}

    def to_rows(self) -> List[Dict[str, Any]]:
        names = self.schema.names
        cols = [c.tolist() for c in self._columns]
        return [dict(zip(names, row, strict=False)) for row in zip(*cols, strict=False)] if cols else []

    # -- transforms (zero-copy where possible) ------------------------------

    def slice(self, offset: int, length: Optional[int] = None) -> "RecordBatch":
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        stop = self.num_rows if length is None else min(offset + length, self.num_rows)
        return RecordBatch(self.schema, [c[offset:stop] for c in self._columns])

    def select(self, names: Sequence[str]) -> "RecordBatch":
        fields = [self.schema.field(n) for n in names]
        cols = [self.column(n) for n in names]
        return RecordBatch(Schema(fields), cols)

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or len(mask) != self.num_rows:
            raise ValueError("mask must be a boolean array matching num_rows")
        return RecordBatch(self.schema, [c[mask] for c in self._columns])

    def take(self, indices: np.ndarray) -> "RecordBatch":
        indices = np.asarray(indices)
        return RecordBatch(self.schema, [c[indices] for c in self._columns])

    def append_column(self, name: str, values: np.ndarray) -> "RecordBatch":
        values = np.asarray(values)
        if len(values) != self.num_rows:
            raise ValueError(
                f"new column length {len(values)} != num_rows {self.num_rows}"
            )
        if name in self.schema:
            raise ValueError(f"column {name!r} already exists")
        return RecordBatch(
            Schema(list(self.schema.fields) + [Field(name, values.dtype)]),
            list(self._columns) + [values],
        )

    def __repr__(self) -> str:
        return f"RecordBatch({self.schema!r}, rows={self.num_rows})"


def concat_batches(batches: Sequence[RecordBatch]) -> RecordBatch:
    """Concatenate batches with identical schemas."""
    if not batches:
        raise ValueError("cannot concatenate zero batches")
    schema = batches[0].schema
    for b in batches[1:]:
        if b.schema != schema:
            raise ValueError(f"schema mismatch: {b.schema!r} vs {schema!r}")
    cols = [
        np.concatenate([b.column(f.name) for b in batches]) for f in schema.fields
    ]
    return RecordBatch(schema, cols)


# -- wire formats ------------------------------------------------------------


def serialize_columnar(batch: RecordBatch) -> bytes:
    """Header + raw buffers; deserialization is a zero-copy buffer wrap."""
    header = {
        "fields": [[f.name, f.dtype.str] for f in batch.schema.fields],
        "num_rows": batch.num_rows,
    }
    header_bytes = json.dumps(header).encode()
    parts = [_MAGIC, struct.pack("<I", len(header_bytes)), header_bytes]
    for field in batch.schema.fields:
        col = np.ascontiguousarray(batch.column(field.name))
        parts.append(col.tobytes())
    return b"".join(parts)


def deserialize_columnar(data: bytes) -> RecordBatch:
    if data[:4] != _MAGIC:
        raise ValueError("not a columnar-format buffer (bad magic)")
    (header_len,) = struct.unpack_from("<I", data, 4)
    header = json.loads(data[8 : 8 + header_len].decode())
    offset = 8 + header_len
    fields, columns = [], []
    for name, dtype_str in header["fields"]:
        dtype = np.dtype(dtype_str)
        fields.append(Field(name, dtype))
        nbytes = header["num_rows"] * dtype.itemsize
        col = np.frombuffer(data, dtype=dtype, count=header["num_rows"], offset=offset)
        columns.append(col)
        offset += nbytes
    return RecordBatch(Schema(fields), columns)


def serialize_marshalled(batch: RecordBatch) -> bytes:
    """The baseline: pickle a row-oriented representation (O(rows))."""
    return pickle.dumps(batch.to_rows())


def deserialize_marshalled(data: bytes) -> RecordBatch:
    rows = pickle.loads(data)
    if not rows:
        raise ValueError("cannot reconstruct schema from zero marshalled rows")
    columns = {name: np.asarray([r[name] for r in rows]) for name in rows[0]}
    return RecordBatch.from_arrays(columns)
