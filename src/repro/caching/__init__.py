"""The caching layer: shared format, tiers, redundancy, distributed KV.

Paper §1: "a fast caching layer with a standard format is the bedrock of
our data plane."  This package provides that layer — the Arrow-like
columnar format, tiered memory (DRAM/HBM/disaggregated), replication and
Reed-Solomon erasure coding, and the location-transparent KV store.
"""

from .columnar import (
    Field,
    RecordBatch,
    Schema,
    concat_batches,
    deserialize_columnar,
    deserialize_marshalled,
    serialize_columnar,
    serialize_marshalled,
)
from .kv import InMemoryKV, KVStore, ObjectMeta, estimate_nbytes
from .replication import ErasureCode, ReplicationScheme, Shard, redundancy_overhead
from .store import CacheNode, CachingLayer, ObjectLostError, default_transfer_time
from .tiers import (
    DEVICE_HBM_TIER,
    DISAGG_MEMORY_TIER,
    HOST_DRAM_TIER,
    EvictionPolicy,
    TieredCache,
    TierSpec,
    TierStats,
)

__all__ = [
    "Field",
    "Schema",
    "RecordBatch",
    "concat_batches",
    "serialize_columnar",
    "deserialize_columnar",
    "serialize_marshalled",
    "deserialize_marshalled",
    "KVStore",
    "InMemoryKV",
    "ObjectMeta",
    "estimate_nbytes",
    "ReplicationScheme",
    "ErasureCode",
    "Shard",
    "redundancy_overhead",
    "CacheNode",
    "CachingLayer",
    "ObjectLostError",
    "default_transfer_time",
    "TierSpec",
    "TieredCache",
    "TierStats",
    "EvictionPolicy",
    "HOST_DRAM_TIER",
    "DEVICE_HBM_TIER",
    "DISAGG_MEMORY_TIER",
]
