"""Redundancy schemes for the reliable caching layer.

The paper (§2.1) offers two recovery designs: lineage re-execution and "a
reliable caching layer with data replication or EC".  This module provides
the storage-side mechanisms: full replication and a real Reed-Solomon
(k data + m parity) code over GF(256), both with explicit storage-overhead
accounting so experiment E5 can chart the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .gf256 import gf_inv, gf_mat_inv, gf_matmul

__all__ = ["ReplicationScheme", "ErasureCode", "Shard", "redundancy_overhead"]


@dataclass(frozen=True)
class Shard:
    """One stored fragment of an object."""

    index: int
    payload: bytes
    is_parity: bool


class ReplicationScheme:
    """N-way full replication."""

    def __init__(self, factor: int = 2):
        if factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {factor}")
        self.factor = factor

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per logical byte."""
        return float(self.factor)

    def encode(self, data: bytes) -> List[Shard]:
        return [Shard(index=i, payload=data, is_parity=False) for i in range(self.factor)]

    def decode(self, shards: Sequence[Optional[Shard]], original_len: int) -> bytes:
        for shard in shards:
            if shard is not None:
                if len(shard.payload) != original_len:
                    raise ValueError("replica length mismatch")
                return shard.payload
        raise ValueError("all replicas lost; object unrecoverable")

    def tolerates(self) -> int:
        """Number of shard losses survivable."""
        return self.factor - 1


class ErasureCode:
    """Systematic Reed-Solomon RS(k, m): k data shards + m parity shards.

    Encoding splits the object into k equal stripes; parity rows come from a
    Vandermonde matrix, so any k of the k+m shards reconstruct the object.
    """

    def __init__(self, data_shards: int = 4, parity_shards: int = 2):
        if data_shards < 1 or parity_shards < 0:
            raise ValueError(f"invalid RS({data_shards},{parity_shards})")
        if data_shards + parity_shards > 255:
            raise ValueError("RS over GF(256) supports at most 255 shards")
        self.k = data_shards
        self.m = parity_shards
        # Cauchy parity matrix: parity[i][j] = 1/(x_i ^ y_j) with disjoint
        # x/y sets.  Stacked under the identity this is MDS: any k of the
        # k+m rows form an invertible matrix (unlike naive Vandermonde).
        self._parity_matrix = np.array(
            [
                [int(gf_inv(np.uint8((self.k + i) ^ j))) for j in range(self.k)]
                for i in range(self.m)
            ],
            dtype=np.uint8,
        )

    @property
    def storage_overhead(self) -> float:
        return (self.k + self.m) / self.k

    def tolerates(self) -> int:
        return self.m

    def _stripe(self, data: bytes) -> np.ndarray:
        """Pad to a multiple of k and reshape to (k, stripe_len)."""
        stripe_len = (len(data) + self.k - 1) // self.k
        padded = np.zeros(self.k * max(stripe_len, 1), dtype=np.uint8)
        padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        return padded.reshape(self.k, -1)

    def encode(self, data: bytes) -> List[Shard]:
        stripes = self._stripe(data)
        shards = [
            Shard(index=i, payload=stripes[i].tobytes(), is_parity=False)
            for i in range(self.k)
        ]
        if self.m:
            parity = gf_matmul(self._parity_matrix, stripes)
            shards.extend(
                Shard(index=self.k + i, payload=parity[i].tobytes(), is_parity=True)
                for i in range(self.m)
            )
        return shards

    def _row_for_shard(self, index: int) -> np.ndarray:
        if index < self.k:
            row = np.zeros(self.k, dtype=np.uint8)
            row[index] = 1
            return row
        return self._parity_matrix[index - self.k]

    def decode(self, shards: Sequence[Optional[Shard]], original_len: int) -> bytes:
        """Reconstruct from any >= k surviving shards (None = lost)."""
        surviving = [s for s in shards if s is not None]
        if len(surviving) < self.k:
            raise ValueError(
                f"only {len(surviving)} shards survive; RS({self.k},{self.m}) needs {self.k}"
            )
        chosen = surviving[: self.k]
        matrix = np.stack([self._row_for_shard(s.index) for s in chosen])
        rows = np.stack(
            [np.frombuffer(s.payload, dtype=np.uint8) for s in chosen]
        )
        inverse = gf_mat_inv(matrix)
        stripes = gf_matmul(inverse, rows)
        return stripes.reshape(-1).tobytes()[:original_len]


def redundancy_overhead(scheme) -> float:
    """Uniform accessor used by the fault-tolerance experiment."""
    return scheme.storage_overhead
