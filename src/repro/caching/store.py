"""The distributed caching layer: location-transparent KV over many nodes.

This is "the bedrock of our data plane" (§1): it stores states, external
storage's input/output, and ephemeral results exchanged by functions.  The
four benefits the paper lists map to concrete mechanisms here:

1. compute/state decoupling — the directory knows where every object is,
   so schedulers can move *vertices* to data (``locations``);
2. shared format — values are typically :class:`RecordBatch`es exchanged
   without marshalling (see :mod:`repro.caching.columnar`);
3. futures across system boundaries — the runtime stores task outputs here
   so a consumer system can start before the producer system finishes;
4. optional high availability — a redundancy scheme (replication or RS
   erasure coding) replaces lineage as the recovery story.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .kv import estimate_nbytes
from .replication import ErasureCode, Shard
from .tiers import TieredCache, TierSpec

__all__ = ["CacheNode", "CachingLayer", "ObjectLostError", "default_transfer_time"]


class ObjectLostError(KeyError):
    """The object is gone and the redundancy scheme cannot reconstruct it."""


def default_transfer_time(src: str, dst: str, nbytes: int) -> float:
    """Same node: free.  Cross node: 100 GbE-ish with 5 us latency."""
    if src == dst:
        return 0.0
    return 5e-6 + nbytes / (12.5 * (1 << 30))


@dataclass
class CacheNode:
    """One participant in the caching layer."""

    node_id: str
    cache: TieredCache = field(default_factory=TieredCache)
    alive: bool = True


@dataclass
class _DirectoryEntry:
    key: str
    nbytes: int
    scheme: Optional[object]  # ReplicationScheme | ErasureCode | None
    payload_len: int  # serialized length when sharded
    placements: List[Tuple[str, int]]  # (node_id, shard_index)


class CachingLayer:
    """Distributed KV with a location directory and optional redundancy.

    ``redundancy=None`` stores a single copy (recovery must come from
    lineage).  A :class:`ReplicationScheme` or :class:`ErasureCode` makes
    the layer reliable at a storage-overhead cost; experiment E5 charts
    exactly this trade-off.
    """

    def __init__(
        self,
        nodes: Sequence[CacheNode],
        redundancy: Optional[object] = None,
        transfer_time: Callable[[str, str, int], float] = default_transfer_time,
    ):
        if not nodes:
            raise ValueError("caching layer needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate cache node ids: {ids}")
        self._nodes: Dict[str, CacheNode] = {n.node_id: n for n in nodes}
        self.redundancy = redundancy
        self.transfer_time = transfer_time
        self._directory: Dict[str, _DirectoryEntry] = {}
        self._rr = 0  # round-robin cursor for placement

    # -- helpers -------------------------------------------------------------

    @property
    def node_ids(self) -> List[str]:
        return list(self._nodes.keys())

    def node(self, node_id: str) -> CacheNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown cache node {node_id!r}") from None

    def _alive_nodes(self) -> List[CacheNode]:
        return [n for n in self._nodes.values() if n.alive]

    def _placement_order(self, preferred: Optional[str]) -> List[str]:
        """Preferred node first, then round-robin over the rest."""
        alive = [n.node_id for n in self._alive_nodes()]
        if not alive:
            raise RuntimeError("no alive cache nodes")
        order: List[str] = []
        if preferred in alive:
            order.append(preferred)
        rest = [nid for nid in alive if nid not in order]
        rest = rest[self._rr % max(len(rest), 1) :] + rest[: self._rr % max(len(rest), 1)]
        self._rr += 1
        return order + rest

    # -- KV API ----------------------------------------------------------------

    def put(
        self,
        key: str,
        value: Any,
        nbytes: Optional[int] = None,
        preferred_node: Optional[str] = None,
    ) -> float:
        """Store ``value``; returns modeled seconds (writes + redundancy)."""
        nbytes = nbytes if nbytes is not None else estimate_nbytes(value)
        if key in self._directory:
            self.delete(key)
        order = self._placement_order(preferred_node)
        elapsed = 0.0

        if self.redundancy is None:
            nid = order[0]
            elapsed += self._nodes[nid].cache.put(key, value, nbytes)
            entry = _DirectoryEntry(key, nbytes, None, 0, [(nid, 0)])
        else:
            payload = pickle.dumps(value)
            shards = self.redundancy.encode(payload)
            if len(order) < len(shards):
                # fewer nodes than shards: wrap around (reduced failure
                # independence, but the object stays addressable)
                order = (order * ((len(shards) // len(order)) + 1))[: len(shards)]
            placements = []
            for shard, nid in zip(shards, order, strict=False):
                shard_key = f"{key}#shard{shard.index}"
                src = order[0]
                elapsed += self.transfer_time(src, nid, len(shard.payload))
                elapsed += self._nodes[nid].cache.put(shard_key, shard, len(shard.payload))
                placements.append((nid, shard.index))
            entry = _DirectoryEntry(key, nbytes, self.redundancy, len(payload), placements)
        self._directory[key] = entry
        return elapsed

    def get(self, key: str, at_node: Optional[str] = None) -> Tuple[Any, float]:
        """Fetch from the nearest live replica; returns (value, seconds)."""
        entry = self._entry(key)
        reader = at_node or self.node_ids[0]
        if entry.scheme is None:
            nid, _ = entry.placements[0]
            node = self._nodes[nid]
            if not node.alive or not node.cache.contains(key):
                raise ObjectLostError(
                    f"object {key!r} lost (node {nid} down) and no redundancy configured"
                )
            value, t = node.cache.get(key)
            return value, t + self.transfer_time(nid, reader, entry.nbytes)

        # gather surviving shards, nearest-first
        alive_placements = [
            (nid, idx)
            for nid, idx in entry.placements
            if self._nodes[nid].alive
            and self._nodes[nid].cache.contains(f"{key}#shard{idx}")
        ]
        alive_placements.sort(key=lambda p: self.transfer_time(p[0], reader, 1))
        total_shards = len(entry.placements)
        shards: List[Optional[Shard]] = [None] * total_shards
        elapsed = 0.0
        needed = (
            entry.scheme.k if isinstance(entry.scheme, ErasureCode) else 1
        )
        got = 0
        for nid, idx in alive_placements:
            if got >= needed:
                break
            shard, t = self._nodes[nid].cache.get(f"{key}#shard{idx}")
            elapsed += t + self.transfer_time(nid, reader, len(shard.payload))
            shards[idx] = shard
            got += 1
        try:
            payload = entry.scheme.decode(shards, entry.payload_len)
        except ValueError as exc:
            raise ObjectLostError(f"object {key!r} unrecoverable: {exc}") from exc
        return pickle.loads(payload), elapsed

    def delete(self, key: str) -> bool:
        entry = self._directory.pop(key, None)
        if entry is None:
            return False
        if entry.scheme is None:
            for nid, _ in entry.placements:
                self._nodes[nid].cache.delete(key)
        else:
            for nid, idx in entry.placements:
                self._nodes[nid].cache.delete(f"{key}#shard{idx}")
        return True

    def contains(self, key: str) -> bool:
        return key in self._directory

    def keys(self) -> List[str]:
        return list(self._directory.keys())

    # -- location / failure (runtime-facing, not user-facing) -------------------

    def _entry(self, key: str) -> _DirectoryEntry:
        entry = self._directory.get(key)
        if entry is None:
            raise KeyError(f"object {key!r} not in caching layer")
        return entry

    def locations(self, key: str) -> List[str]:
        """Node ids currently holding (a shard of) the object."""
        entry = self._entry(key)
        out = set()
        for nid, idx in entry.placements:
            node = self._nodes[nid]
            if not node.alive:
                continue
            stored_key = key if entry.scheme is None else f"{key}#shard{idx}"
            if node.cache.contains(stored_key):
                out.add(nid)
        return sorted(out)

    def size_of(self, key: str) -> int:
        return self._entry(key).nbytes

    def migrate(self, key: str, to_node: str) -> float:
        """Move a single-copy object to another node (compute follows data
        in one direction; data can follow compute in the other)."""
        entry = self._entry(key)
        if entry.scheme is not None:
            raise ValueError("migrate() applies to single-copy objects only")
        src_nid, _ = entry.placements[0]
        if src_nid == to_node:
            return 0.0
        value, t_read = self._nodes[src_nid].cache.get(key)
        t_move = self.transfer_time(src_nid, to_node, entry.nbytes)
        self._nodes[src_nid].cache.delete(key)
        t_write = self._nodes[to_node].cache.put(key, value, entry.nbytes)
        entry.placements = [(to_node, 0)]
        return t_read + t_move + t_write

    def fail_node(self, node_id: str) -> None:
        self.node(node_id).alive = False

    def recover_node(self, node_id: str) -> None:
        """Bring a node back empty (its memory contents are gone)."""
        node = self.node(node_id)
        node.alive = True
        node.cache = TieredCache(
            [t for t in _tier_specs(node.cache)], policy=node.cache.policy
        )

    def storage_overhead(self) -> float:
        if self.redundancy is None:
            return 1.0
        return self.redundancy.storage_overhead

    def total_stored_bytes(self) -> int:
        return sum(
            n.cache.used_bytes() for n in self._nodes.values() if n.alive
        )


def _tier_specs(cache: TieredCache) -> List[TierSpec]:
    return [t.spec for t in cache._tiers]
