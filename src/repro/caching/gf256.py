"""GF(2^8) arithmetic for Reed-Solomon erasure coding.

Log/antilog tables over the AES polynomial x^8+x^4+x^3+x+1 (0x11b),
vectorized with numpy so encode/decode work on whole shards at once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gf_mul", "gf_inv", "gf_pow", "gf_matmul", "gf_mat_inv", "EXP", "LOG"]

_POLY = 0x11B

EXP = np.zeros(512, dtype=np.uint8)
LOG = np.zeros(256, dtype=np.int32)

# Generator 3 (x+1) is primitive modulo 0x11b; 2 is not (order 51).
_x = 1
for _i in range(255):
    EXP[_i] = _x
    LOG[_x] = _i
    _hi = _x << 1
    if _hi & 0x100:
        _hi ^= _POLY
    _x = _hi ^ _x  # multiply by 3 = (x * 2) xor x
EXP[255:510] = EXP[:255]  # wrap so exp lookups never need a modulo


def gf_mul(a, b):
    """Elementwise product in GF(256); accepts scalars or uint8 arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    result = EXP[(LOG[a] + LOG[b]) % 255]
    zero = (a == 0) | (b == 0)
    return np.where(zero, np.uint8(0), result).astype(np.uint8)


def gf_pow(a: int, n: int) -> int:
    """a**n in GF(256)."""
    if a == 0:
        if n == 0:
            return 1
        return 0
    return int(EXP[(LOG[a] * n) % 255])


def gf_inv(a):
    """Multiplicative inverse; raises on zero."""
    a_arr = np.asarray(a, dtype=np.uint8)
    if np.any(a_arr == 0):
        raise ZeroDivisionError("inverse of 0 in GF(256)")
    return EXP[(255 - LOG[a_arr]) % 255].astype(np.uint8)


def gf_matmul(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256): xor-accumulate of gf_mul outer products."""
    A = np.asarray(A, dtype=np.uint8)
    B = np.asarray(B, dtype=np.uint8)
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"shape mismatch: {A.shape} @ {B.shape}")
    out = np.zeros((A.shape[0], B.shape[1]), dtype=np.uint8)
    for k in range(A.shape[1]):
        out ^= gf_mul(A[:, k : k + 1], B[k : k + 1, :])
    return out


def gf_mat_inv(M: np.ndarray) -> np.ndarray:
    """Gauss-Jordan inversion over GF(256); raises on singular matrices."""
    M = np.asarray(M, dtype=np.uint8)
    n, m = M.shape
    if n != m:
        raise ValueError(f"matrix must be square, got {M.shape}")
    aug = np.concatenate([M.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot = None
        for row in range(col, n):
            if aug[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_piv = gf_inv(aug[col, col])
        aug[col] = gf_mul(aug[col], inv_piv)
        for row in range(n):
            if row != col and aug[row, col] != 0:
                aug[row] ^= gf_mul(aug[row, col], aug[col])
    return aug[:, n:]
