"""Memory tiers: host DRAM, device HBM, disaggregated memory.

Figure 2, note (5): the caching layer manages "host DRAM, HBM in
heterogeneous devices, and disaggregated memory" behind one KV API, and is
"responsible for managing data locations, replication, tiering policies".

:class:`TieredCache` keeps hot objects in fast tiers and transparently
demotes cold ones down the hierarchy when space runs out.  Every operation
returns the modeled time it cost, so experiment E9 can compare tiering
policies analytically without running the DES.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..cluster.hardware import GB, USEC
from .kv import estimate_nbytes

__all__ = [
    "TierSpec",
    "EvictionPolicy",
    "TieredCache",
    "TierStats",
    "HOST_DRAM_TIER",
    "DEVICE_HBM_TIER",
    "DISAGG_MEMORY_TIER",
]


@dataclass(frozen=True)
class TierSpec:
    """One level of the memory hierarchy."""

    name: str
    capacity_bytes: int
    read_bandwidth: float  # bytes/sec
    write_bandwidth: float  # bytes/sec
    latency: float  # seconds per access

    def read_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.read_bandwidth

    def write_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.write_bandwidth


DEVICE_HBM_TIER = TierSpec(
    name="device-hbm",
    capacity_bytes=16 * GB,
    read_bandwidth=1500 * GB,
    write_bandwidth=1500 * GB,
    latency=0.5 * USEC,
)

HOST_DRAM_TIER = TierSpec(
    name="host-dram",
    capacity_bytes=64 * GB,
    read_bandwidth=25 * GB,
    write_bandwidth=25 * GB,
    latency=1 * USEC,
)

DISAGG_MEMORY_TIER = TierSpec(
    name="disagg-memory",
    capacity_bytes=512 * GB,
    read_bandwidth=12 * GB,
    write_bandwidth=12 * GB,
    latency=8 * USEC,
)


class EvictionPolicy(enum.Enum):
    LRU = "lru"
    FIFO = "fifo"
    LARGEST_FIRST = "largest_first"


@dataclass
class TierStats:
    hits: int = 0
    misses_to_lower: int = 0  # served from a lower (slower) tier
    demotions: int = 0
    promotions: int = 0
    evict_failures: int = 0
    time_spent: float = 0.0


class _TierState:
    """Mutable occupancy for one tier (insertion-ordered for LRU/FIFO)."""

    def __init__(self, spec: TierSpec):
        self.spec = spec
        self.entries: "OrderedDict[str, int]" = OrderedDict()  # key -> nbytes
        self.used = 0

    def fits(self, nbytes: int) -> bool:
        return self.used + nbytes <= self.spec.capacity_bytes

    def add(self, key: str, nbytes: int) -> None:
        if key in self.entries:
            raise KeyError(f"{key!r} already in tier {self.spec.name}")
        self.entries[key] = nbytes
        self.used += nbytes

    def remove(self, key: str) -> int:
        nbytes = self.entries.pop(key)
        self.used -= nbytes
        return nbytes

    def touch(self, key: str) -> None:
        self.entries.move_to_end(key)


class TieredCache:
    """A KV cache spanning an ordered list of tiers (fastest first).

    ``put``/``get`` return ``(value_or_None, modeled_seconds)`` so callers
    can account virtual time.  Objects land in the fastest tier with room;
    when nothing fits, victims are demoted down the hierarchy; if even the
    last tier is full the coldest data is dropped (it is a *cache*).
    """

    def __init__(
        self,
        tiers: Optional[List[TierSpec]] = None,
        policy: EvictionPolicy = EvictionPolicy.LRU,
        promote_on_hit: bool = True,
    ):
        specs = tiers or [DEVICE_HBM_TIER, HOST_DRAM_TIER, DISAGG_MEMORY_TIER]
        if not specs:
            raise ValueError("need at least one tier")
        names = [t.name for t in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.policy = policy
        self.promote_on_hit = promote_on_hit
        self._tiers = [_TierState(spec) for spec in specs]
        self._values: Dict[str, Any] = {}
        self._tier_of: Dict[str, int] = {}
        self.stats: Dict[str, TierStats] = {t.name: TierStats() for t in specs}
        self.dropped = 0

    # -- internals ----------------------------------------------------------

    def _victim(self, tier: _TierState) -> str:
        if not tier.entries:
            raise LookupError(f"tier {tier.spec.name} empty, nothing to evict")
        if self.policy in (EvictionPolicy.LRU, EvictionPolicy.FIFO):
            # entries are insertion/recency ordered; head is the victim
            return next(iter(tier.entries))
        # LARGEST_FIRST
        return max(tier.entries.items(), key=lambda kv: kv[1])[0]

    def _make_room(self, tier_idx: int, nbytes: int) -> float:
        """Demote/drop until ``nbytes`` fits in tier ``tier_idx``."""
        tier = self._tiers[tier_idx]
        if nbytes > tier.spec.capacity_bytes:
            raise ValueError(
                f"object of {nbytes}B can never fit tier {tier.spec.name} "
                f"({tier.spec.capacity_bytes}B)"
            )
        elapsed = 0.0
        while not tier.fits(nbytes):
            victim = self._victim(tier)
            vbytes = tier.remove(victim)
            elapsed += tier.spec.read_time(vbytes)
            if tier_idx + 1 < len(self._tiers):
                elapsed += self._place(victim, vbytes, tier_idx + 1)
                self.stats[tier.spec.name].demotions += 1
            else:
                # fell off the bottom of the hierarchy
                del self._values[victim]
                del self._tier_of[victim]
                self.dropped += 1
                self.stats[tier.spec.name].evict_failures += 1
        return elapsed

    def _place(self, key: str, nbytes: int, tier_idx: int) -> float:
        tier = self._tiers[tier_idx]
        elapsed = self._make_room(tier_idx, nbytes)
        tier.add(key, nbytes)
        self._tier_of[key] = tier_idx
        elapsed += tier.spec.write_time(nbytes)
        self.stats[tier.spec.name].time_spent += elapsed
        return elapsed

    # -- KV API --------------------------------------------------------------

    def put(self, key: str, value: Any, nbytes: Optional[int] = None) -> float:
        """Store; returns modeled seconds."""
        nbytes = nbytes if nbytes is not None else estimate_nbytes(value)
        elapsed = 0.0
        if key in self._values:
            elapsed += self.delete(key)
        self._values[key] = value
        # fastest tier the object can ever fit
        for idx, tier in enumerate(self._tiers):
            if nbytes <= tier.spec.capacity_bytes:
                elapsed += self._place(key, nbytes, idx)
                return elapsed
        del self._values[key]
        raise ValueError(f"object of {nbytes}B exceeds every tier's capacity")

    def get(self, key: str) -> Tuple[Any, float]:
        """Fetch; returns ``(value, modeled_seconds)``."""
        if key not in self._values:
            raise KeyError(f"object {key!r} not in cache")
        tier_idx = self._tier_of[key]
        tier = self._tiers[tier_idx]
        nbytes = tier.entries[key]
        elapsed = tier.spec.read_time(nbytes)
        stats = self.stats[tier.spec.name]
        if tier_idx == 0:
            stats.hits += 1
        else:
            stats.misses_to_lower += 1
        if self.policy == EvictionPolicy.LRU:
            tier.touch(key)
        if self.promote_on_hit and tier_idx > 0:
            # promote one level up, demoting the upper tier's coldest entry
            # to make room (classic promotion caching: hot keys converge to
            # the fast tier under a skewed access stream)
            upper = self._tiers[tier_idx - 1]
            if nbytes <= upper.spec.capacity_bytes:
                tier.remove(key)
                del self._tier_of[key]
                elapsed += self._place(key, nbytes, tier_idx - 1)
                self.stats[upper.spec.name].promotions += 1
        stats.time_spent += elapsed
        return self._values[key], elapsed

    def delete(self, key: str) -> float:
        if key not in self._values:
            return 0.0
        tier_idx = self._tier_of.pop(key)
        self._tiers[tier_idx].remove(key)
        del self._values[key]
        return self._tiers[tier_idx].spec.latency

    def contains(self, key: str) -> bool:
        return key in self._values

    def keys(self) -> Iterator[str]:
        return iter(list(self._values.keys()))

    def tier_of(self, key: str) -> str:
        if key not in self._tier_of:
            raise KeyError(f"object {key!r} not in cache")
        return self._tiers[self._tier_of[key]].spec.name

    def used_bytes(self, tier_name: Optional[str] = None) -> int:
        if tier_name is None:
            return sum(t.used for t in self._tiers)
        for tier in self._tiers:
            if tier.spec.name == tier_name:
                return tier.used
        raise KeyError(f"no tier {tier_name!r}")

    @property
    def tier_names(self) -> List[str]:
        return [t.spec.name for t in self._tiers]
