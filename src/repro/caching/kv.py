"""The caching layer's user-facing KV API.

Figure 2, note (5): "The caching layer exposes KV APIs... Users of it only
see KV APIs."  Everything else — tiering, replication, location — is an
implementation detail behind this interface.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterator, Optional

__all__ = ["KVStore", "InMemoryKV", "ObjectMeta"]


class ObjectMeta:
    """Metadata the caching layer keeps per object."""

    __slots__ = ("key", "nbytes", "location")

    def __init__(self, key: str, nbytes: int, location: str = ""):
        self.key = key
        self.nbytes = nbytes
        self.location = location

    def __repr__(self) -> str:
        return f"ObjectMeta({self.key!r}, {self.nbytes}B @ {self.location or '?'})"


class KVStore(abc.ABC):
    """Minimal KV contract: get/put/delete/contains."""

    @abc.abstractmethod
    def put(self, key: str, value: Any, nbytes: Optional[int] = None) -> None:
        """Store ``value`` under ``key``, replacing any prior value."""

    @abc.abstractmethod
    def get(self, key: str) -> Any:
        """Return the value for ``key``; raise ``KeyError`` if absent."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; return whether it existed."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        ...

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        ...

    def get_or_default(self, key: str, default: Any = None) -> Any:
        try:
            return self.get(key)
        except KeyError:
            return default


def estimate_nbytes(value: Any) -> int:
    """Best-effort object size for accounting when the caller gives none."""
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, (list, tuple)):
        return 16 + sum(estimate_nbytes(v) for v in value)
    if isinstance(value, dict):
        return 16 + sum(
            estimate_nbytes(k) + estimate_nbytes(v) for k, v in value.items()
        )
    return 32  # scalars, small objects


class InMemoryKV(KVStore):
    """A plain dict-backed KV store (the degenerate single-tier cache)."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self._meta: Dict[str, ObjectMeta] = {}

    def put(self, key: str, value: Any, nbytes: Optional[int] = None) -> None:
        self._data[key] = value
        self._meta[key] = ObjectMeta(
            key, nbytes if nbytes is not None else estimate_nbytes(value), "memory"
        )

    def get(self, key: str) -> Any:
        if key not in self._data:
            raise KeyError(f"object {key!r} not in cache")
        return self._data[key]

    def delete(self, key: str) -> bool:
        existed = key in self._data
        self._data.pop(key, None)
        self._meta.pop(key, None)
        return existed

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> Iterator[str]:
        return iter(list(self._data.keys()))

    def meta(self, key: str) -> ObjectMeta:
        if key not in self._meta:
            raise KeyError(f"object {key!r} not in cache")
        return self._meta[key]

    @property
    def total_bytes(self) -> int:
        return sum(m.nbytes for m in self._meta.values())
