"""MPMD pipeline-parallel training over a tightly-coupled cluster.

The paper's second motivating trend (§1): "giant model training has
evolved from using SPMD to MPMD over multiple highly-specialized
clusters" (Pathways-style).  This module implements GPipe-flavoured
pipeline parallelism on the stateful serverless runtime: each model stage
is an *actor* pinned to its own accelerator; microbatches flow forward
through the stage chain and gradients flow back, with weight updates
accumulated per epoch and applied at the epoch barrier (so results are
bit-identical to serial full-batch training — the test oracle).

The pipeline "bubble" is the idle fraction (S-1)/(M+S-1) for S stages and
M microbatches; benchmark E11 charts how more microbatches amortize it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..cluster.hardware import DeviceKind
from ..runtime.object_ref import ObjectRef
from ..runtime.runtime import ActorHandle, ServerlessRuntime
from ..runtime.task import ANY_COMPUTE_KIND

__all__ = ["StageState", "PipelineParallelTrainer", "serial_reference_training"]


class StageState:
    """One pipeline stage: a linear layer (+ relu on hidden stages)."""

    def __init__(self, in_dim: int, out_dim: int, is_last: bool, seed: int):
        rng = np.random.default_rng(seed)
        self.W = rng.standard_normal((in_dim, out_dim)) * (1.0 / np.sqrt(in_dim))
        self.is_last = is_last
        self.inputs: Dict[int, np.ndarray] = {}  # microbatch id -> cached x
        self.pre_act: Dict[int, np.ndarray] = {}
        self.dW_accum = np.zeros_like(self.W)

    # -- the actor methods (state passed explicitly, Ray-style) ------------

    @staticmethod
    def forward(state: "StageState", mb_id: int, x: np.ndarray) -> np.ndarray:
        z = x @ state.W
        state.inputs[mb_id] = x
        state.pre_act[mb_id] = z
        return z if state.is_last else np.maximum(z, 0.0)

    @staticmethod
    def backward(state: "StageState", mb_id: int, grad_out: np.ndarray) -> np.ndarray:
        x = state.inputs.pop(mb_id)
        z = state.pre_act.pop(mb_id)
        grad_z = grad_out if state.is_last else grad_out * (z > 0)
        state.dW_accum += x.T @ grad_z
        return grad_z @ state.W.T

    @staticmethod
    def apply_update(state: "StageState", lr: float, scale: float) -> float:
        state.W -= lr * state.dW_accum * scale
        norm = float(np.linalg.norm(state.dW_accum))
        state.dW_accum = np.zeros_like(state.W)
        return norm

    @staticmethod
    def get_weights(state: "StageState") -> np.ndarray:
        return state.W.copy()


@dataclass
class PipelineParallelTrainer:
    """GPipe-style trainer: one stage actor per accelerator."""

    runtime: ServerlessRuntime
    layer_dims: Sequence[int]  # e.g. (8, 16, 16, 1)
    lr: float = 0.01
    seed: int = 0
    #: CPU-seconds for the FULL batch through one stage (per-microbatch
    #: task cost scales with its share of the rows)
    stage_cost: float = 1e-4
    handles: List[ActorHandle] = field(init=False)

    def __post_init__(self) -> None:
        if len(self.layer_dims) < 2:
            raise ValueError("need at least one layer (two dims)")
        num_stages = len(self.layer_dims) - 1
        accels = [
            d
            for d in self.runtime.cluster.all_devices()
            if d.kind in (DeviceKind.GPU, DeviceKind.FPGA)
        ]
        if len(accels) < num_stages:
            raise ValueError(
                f"{num_stages} stages need {num_stages} accelerators, "
                f"cluster has {len(accels)}"
            )
        self.handles = []
        for s in range(num_stages):
            handle = self.runtime.create_actor(
                StageState,
                (
                    self.layer_dims[s],
                    self.layer_dims[s + 1],
                    s == num_stages - 1,
                    self.seed + s,
                ),
                supported_kinds=ANY_COMPUTE_KIND,
                pinned_device=accels[s].device_id,
            )
            self.handles.append(handle)

    @property
    def num_stages(self) -> int:
        return len(self.handles)

    def train_epoch(self, X: np.ndarray, y: np.ndarray, microbatches: int) -> float:
        """One pipelined epoch; returns the training loss before update."""
        if microbatches < 1 or microbatches > len(y):
            raise ValueError(f"bad microbatch count {microbatches}")
        rt = self.runtime
        xs = np.array_split(X, microbatches)
        ys = np.array_split(y, microbatches)
        n_total = len(y)

        # forward: microbatch m through stages 0..S-1 (futures chain)
        preds: List[ObjectRef] = []
        loss_grads: List[ObjectRef] = []
        for m, (xm, ym) in enumerate(zip(xs, ys, strict=False)):
            act: ObjectRef = rt.put(xm)
            mb_cost = self.stage_cost * len(xm) / n_total
            for handle in self.handles:
                act = handle.call(
                    StageState.forward, m, act, compute_cost=mb_cost
                )
            preds.append(act)

            def loss_grad(pred, ym=ym):
                # d/dpred of sum((pred - y)^2): epoch-summed squared loss
                return 2.0 * (pred - ym.reshape(pred.shape))

            loss_grads.append(
                rt.submit(
                    loss_grad,
                    (act,),
                    compute_cost=1e-6,
                    supported_kinds=ANY_COMPUTE_KIND,
                    name=f"lossgrad{m}",
                )
            )

        # backward: gradients flow back through stages S-1..0
        final_grads = []
        for m, grad in enumerate(loss_grads):
            mb_cost = self.stage_cost * len(xs[m]) / n_total
            for handle in reversed(self.handles):
                grad = handle.call(
                    StageState.backward, m, grad, compute_cost=mb_cost
                )
            final_grads.append(grad)
        rt.get(final_grads)

        # epoch barrier: apply accumulated updates (GPipe semantics)
        updates = [
            handle.call(StageState.apply_update, self.lr, 1.0 / n_total)
            for handle in self.handles
        ]
        rt.get(updates)

        pred_values = rt.get(preds)
        pred_all = np.concatenate([p.reshape(-1) for p in pred_values])
        return float(np.mean((pred_all - y) ** 2))

    def weights(self) -> List[np.ndarray]:
        return self.runtime.get(
            [h.call(StageState.get_weights) for h in self.handles]
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = X
        for W, handle in zip(self.weights(), self.handles, strict=False):
            z = out @ W
            is_last = handle is self.handles[-1]
            out = z if is_last else np.maximum(z, 0.0)
        return out.reshape(-1)


def serial_reference_training(
    layer_dims: Sequence[int],
    X: np.ndarray,
    y: np.ndarray,
    epochs: int,
    lr: float,
    seed: int = 0,
) -> List[np.ndarray]:
    """The single-process oracle with identical initialization and updates."""
    num_stages = len(layer_dims) - 1
    rng_Ws = [
        np.random.default_rng(seed + s).standard_normal(
            (layer_dims[s], layer_dims[s + 1])
        )
        * (1.0 / np.sqrt(layer_dims[s]))
        for s in range(num_stages)
    ]
    n = len(y)
    for _ in range(epochs):
        # forward
        acts = [X]
        pre = []
        for s, W in enumerate(rng_Ws):
            z = acts[-1] @ W
            pre.append(z)
            acts.append(z if s == num_stages - 1 else np.maximum(z, 0.0))
        grad = 2.0 * (acts[-1] - y.reshape(acts[-1].shape))
        # backward with epoch-accumulated update
        dWs = [None] * num_stages
        for s in reversed(range(num_stages)):
            grad_z = grad if s == num_stages - 1 else grad * (pre[s] > 0)
            dWs[s] = acts[s].T @ grad_z
            grad = grad_z @ rng_Ws[s].T
        for s in range(num_stages):
            rng_Ws[s] = rng_Ws[s] - lr * dWs[s] / n
    return rng_Ws
