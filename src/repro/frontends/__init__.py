"""The domain-specific declarative tier: SQL, dataframes, MapReduce,
graph processing, and ML — all lowering onto the same FlowGraph/IR."""

from . import sql
from .dataframe import DataFrame, from_batch, from_table
from .graph import (
    EdgeList,
    connected_components,
    pagerank,
    pagerank_flowgraph,
    pagerank_partitioned_flowgraph,
    sssp,
)
from .mapreduce import MapReduceJob, group_apply
from .matrix import Matrix, constant, param
from .mpmd import (
    PipelineParallelTrainer,
    StageState,
    serial_reference_training,
)
from .streaming import (
    FilterOp,
    MapOp,
    StreamJob,
    StreamOp,
    WindowAggregate,
    micro_batches,
)
from .ml import (
    LinearModel,
    LogisticModel,
    ParameterServer,
    make_classification,
    make_regression,
    training_flowgraph,
)

__all__ = [
    "sql",
    "DataFrame",
    "from_table",
    "from_batch",
    "MapReduceJob",
    "group_apply",
    "Matrix",
    "param",
    "constant",
    "EdgeList",
    "pagerank",
    "sssp",
    "connected_components",
    "pagerank_flowgraph",
    "pagerank_partitioned_flowgraph",
    "LinearModel",
    "LogisticModel",
    "ParameterServer",
    "training_flowgraph",
    "make_regression",
    "make_classification",
    "PipelineParallelTrainer",
    "StageState",
    "serial_reference_training",
    "StreamJob",
    "StreamOp",
    "MapOp",
    "FilterOp",
    "WindowAggregate",
    "micro_batches",
]
