"""ML frontend: minibatch-SGD training expressed three ways.

Covers the ML execution model of §1 and the SPMD/MPMD patterns of §2.3:

* :class:`LinearModel` / :class:`LogisticModel` — exact local trainers
  (numpy), used as oracles and by the examples.
* :func:`training_flowgraph` — one training epoch unrolled into a
  FlowGraph: data-parallel gradient vertices (hardware-agnostic, GPU/FPGA
  eligible) feeding a parameter-update vertex, repeated per epoch — the
  SPMD sub-graph gang scheduling exists for.
* :class:`ParameterServer` — an actor-based asynchronous trainer over the
  stateful serverless runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..caching.columnar import RecordBatch
from ..flowgraph.logical import FlowGraph, Vertex
from ..runtime.runtime import ActorHandle, ServerlessRuntime
from ..runtime.task import ANY_COMPUTE_KIND

__all__ = [
    "LinearModel",
    "LogisticModel",
    "training_flowgraph",
    "ParameterServer",
    "make_regression",
    "make_classification",
]


def make_regression(
    n_samples: int, n_features: int, noise: float = 0.1, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic linear data: returns (X, y, true_weights)."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n_samples, n_features))
    w = rng.standard_normal(n_features)
    y = X @ w + noise * rng.standard_normal(n_samples)
    return X, y, w


def make_classification(
    n_samples: int, n_features: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n_samples, n_features))
    w = rng.standard_normal(n_features)
    y = (X @ w + 0.1 * rng.standard_normal(n_samples) > 0).astype(np.float64)
    return X, y


@dataclass
class LinearModel:
    """Least-squares linear regression trained by minibatch SGD."""

    n_features: int
    lr: float = 0.05
    weights: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.weights = np.zeros(self.n_features)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.weights

    def gradient(self, X: np.ndarray, y: np.ndarray, weights=None) -> np.ndarray:
        w = self.weights if weights is None else weights
        residual = X @ w - y
        return 2.0 * X.T @ residual / len(y)

    def step(self, X: np.ndarray, y: np.ndarray) -> float:
        grad = self.gradient(X, y)
        self.weights = self.weights - self.lr * grad
        return self.loss(X, y)

    def loss(self, X: np.ndarray, y: np.ndarray) -> float:
        residual = self.predict(X) - y
        return float(np.mean(residual**2))

    def fit(self, X: np.ndarray, y: np.ndarray, epochs: int = 50, batch_size: int = 64) -> List[float]:
        losses = []
        for _ in range(epochs):
            for lo in range(0, len(y), batch_size):
                self.step(X[lo : lo + batch_size], y[lo : lo + batch_size])
            losses.append(self.loss(X, y))
        return losses


@dataclass
class LogisticModel:
    """Binary logistic regression trained by minibatch SGD."""

    n_features: int
    lr: float = 0.1
    weights: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.weights = np.zeros(self.n_features)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-(X @ self.weights)))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) > 0.5).astype(np.float64)

    def gradient(self, X: np.ndarray, y: np.ndarray, weights=None) -> np.ndarray:
        w = self.weights if weights is None else weights
        p = 1.0 / (1.0 + np.exp(-(X @ w)))
        return X.T @ (p - y) / len(y)

    def step(self, X: np.ndarray, y: np.ndarray) -> None:
        self.weights = self.weights - self.lr * self.gradient(X, y)

    def fit(self, X: np.ndarray, y: np.ndarray, epochs: int = 50, batch_size: int = 64) -> None:
        for _ in range(epochs):
            for lo in range(0, len(y), batch_size):
                self.step(X[lo : lo + batch_size], y[lo : lo + batch_size])

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == y))


def training_flowgraph(
    X: np.ndarray,
    y: np.ndarray,
    epochs: int = 3,
    workers: int = 4,
    lr: float = 0.05,
) -> Tuple[FlowGraph, Vertex, Dict[str, RecordBatch]]:
    """Unroll synchronous data-parallel SGD into a FlowGraph.

    Per epoch: ``workers`` gradient vertices (each over one data shard,
    marked hardware-agnostic so the scheduler may use GPUs/FPGAs) feed an
    update vertex that averages gradients and steps the weights.  Weights
    flow between epochs along graph edges; returns (graph, final weights
    vertex, source tables).
    """
    if len(X) != len(y):
        raise ValueError("X/y length mismatch")
    n_features = X.shape[1]
    shards = [
        (X[i::workers].copy(), y[i::workers].copy()) for i in range(workers)
    ]
    graph = FlowGraph(f"sgd[{epochs}x{workers}]")
    weights_table = RecordBatch.from_arrays({"w": np.zeros(n_features)})
    tables = {"weights0": weights_table}
    current = graph.add_vertex("weights0", source_table="weights0", parallelism=1)
    grad_flops = X.size * 4.0 / max(workers, 1)

    for epoch in range(epochs):
        grad_vertices = []
        for worker_idx in range(workers):
            Xs, ys = shards[worker_idx]

            def grad_fn(weights_batch: RecordBatch, Xs=Xs, ys=ys) -> RecordBatch:
                w = weights_batch.column("w")
                residual = Xs @ w - ys
                grad = 2.0 * Xs.T @ residual / len(ys)
                return RecordBatch.from_arrays({"g": grad})

            vertex = graph.add_vertex(
                f"grad[e{epoch},w{worker_idx}]",
                py_func=grad_fn,
                compute_cost=grad_flops * 1e-9,
                supported_kinds=ANY_COMPUTE_KIND,
            )
            graph.add_edge(current, vertex)
            grad_vertices.append(vertex)

        def update_fn(weights_batch: RecordBatch, *grad_batches: RecordBatch) -> RecordBatch:
            w = weights_batch.column("w")
            grads = np.stack([g.column("g") for g in grad_batches])
            return RecordBatch.from_arrays({"w": w - lr * grads.mean(axis=0)})

        update = graph.add_vertex(
            f"update[e{epoch}]",
            py_func=update_fn,
            compute_cost=n_features * 1e-8,
        )
        graph.add_edge(current, update, dst_port=0)
        for port, vertex in enumerate(grad_vertices, start=1):
            graph.add_edge(vertex, update, dst_port=port)
        current = update
    graph.validate()
    return graph, current, tables


class ParameterServer:
    """Actor-based asynchronous SGD on the serverless runtime."""

    class _State:
        def __init__(self, n_features: int, lr: float):
            self.weights = np.zeros(n_features)
            self.lr = lr
            self.updates = 0

    def __init__(self, runtime: ServerlessRuntime, n_features: int, lr: float = 0.05):
        self.runtime = runtime
        self.n_features = n_features
        self.handle: ActorHandle = runtime.create_actor(
            lambda: ParameterServer._State(n_features, lr)
        )

    @staticmethod
    def _apply(state: "ParameterServer._State", grad: np.ndarray) -> np.ndarray:
        state.weights = state.weights - state.lr * grad
        state.updates += 1
        return state.weights

    @staticmethod
    def _read(state: "ParameterServer._State") -> np.ndarray:
        return state.weights.copy()

    def push_gradient(self, grad):
        """``grad`` may be an ndarray or an ObjectRef to one."""
        return self.handle.call(
            ParameterServer._apply, grad, compute_cost=self.n_features * 1e-8
        )

    def get_weights(self) -> np.ndarray:
        return self.runtime.get(self.handle.call(ParameterServer._read))

    def train(
        self,
        X: np.ndarray,
        y: np.ndarray,
        rounds: int = 10,
        workers: int = 4,
    ) -> np.ndarray:
        """Synchronous-rounds PS training: workers compute grads in
        parallel tasks; the actor serializes updates."""
        shards = [(X[i::workers], y[i::workers]) for i in range(workers)]
        for _ in range(rounds):
            weights_ref = self.handle.call(ParameterServer._read)

            def make_grad(Xs, ys):
                def grad(w):
                    residual = Xs @ w - ys
                    return 2.0 * Xs.T @ residual / len(ys)

                return grad

            grad_refs = [
                self.runtime.submit(
                    make_grad(Xs, ys),
                    (weights_ref,),
                    compute_cost=Xs.size * 4e-9,
                    supported_kinds=ANY_COMPUTE_KIND,
                    name="ps_grad",
                )
                for Xs, ys in shards
            ]
            update_refs = [self.push_gradient(g) for g in grad_refs]
            self.runtime.get(update_refs)
        return self.get_weights()
