"""AST nodes for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...ir.expr import Expr

__all__ = ["SelectItem", "JoinClause", "OrderItem", "SelectStmt", "AggCall"]


@dataclass(frozen=True)
class AggCall:
    """SUM(x) / COUNT(*) / AVG(expr) / MIN(x) / MAX(x) inside a select list.

    ``column`` is set for plain-column aggregates; ``expr`` for aggregates
    over scalar expressions (the planner pre-projects those).  COUNT(*)
    has neither.
    """

    fn: str  # normalized: sum|count|mean|min|max
    column: Optional[str]
    expr: Optional[Expr] = None


@dataclass(frozen=True)
class SelectItem:
    expr: object  # Expr | AggCall
    alias: Optional[str]

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, AggCall):
            return f"{self.expr.fn}_{self.expr.column or 'all'}"
        from ...ir.expr import Col

        if isinstance(self.expr, Col):
            return self.expr.name
        return "expr"


@dataclass(frozen=True)
class JoinClause:
    table: str
    left_on: str
    right_on: str


@dataclass(frozen=True)
class OrderItem:
    column: str
    ascending: bool = True


@dataclass
class SelectStmt:
    items: List[SelectItem]
    table: str
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[str] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return bool(self.group_by) or any(
            isinstance(i.expr, AggCall) for i in self.items
        )
