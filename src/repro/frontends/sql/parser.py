"""Recursive-descent parser for the SQL subset.

Grammar (lowercased keywords shown; input is case-insensitive):

    select_stmt := SELECT select_list FROM ident join* [WHERE expr]
                   [GROUP BY ident_list] [HAVING expr]
                   [ORDER BY order_list] [LIMIT number]
    join        := JOIN ident ON qualified = qualified
    select_list := '*' | item (',' item)*
    item        := (agg '(' (ident|'*') ')' | expr) [AS ident]
    expr        := or-chain of and-chains of comparisons of +- of */ of unary

Qualified names ``t.col`` are accepted; the table part is dropped (joined
frames use the left-frame/``r_``-prefix convention of relational.join).
"""

from __future__ import annotations

from typing import List, Optional

from ...ir.expr import BinOp, Col, Expr, Lit, UnaryOp
from .ast import AggCall, JoinClause, OrderItem, SelectItem, SelectStmt
from .lexer import SQLSyntaxError, Token, tokenize

__all__ = ["parse_select", "SQLSyntaxError"]

_AGG_NAMES = {"sum": "sum", "count": "count", "avg": "mean", "min": "min", "max": "max"}
_CMP = {"=": "==", "==": "==", "<>": "!=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class _Parser:
    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.cur.kind == kind and (text is None or self.cur.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text or kind
            raise SQLSyntaxError(
                f"expected {want!r}, got {self.cur.text!r} at position {self.cur.pos}"
            )
        return tok

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> SelectStmt:
        self.expect("kw", "select")
        distinct = self.accept("kw", "distinct") is not None
        items = self._select_list()
        self.expect("kw", "from")
        table = self.expect("ident").text
        joins = []
        while self.cur.kind == "kw" and self.cur.text in ("join", "inner"):
            joins.append(self._join())
        where = None
        if self.accept("kw", "where"):
            where = self._expr()
        group_by: List[str] = []
        if self.accept("kw", "group"):
            self.expect("kw", "by")
            group_by.append(self._column_name())
            while self.accept("sym", ","):
                group_by.append(self._column_name())
        having = None
        if self.accept("kw", "having"):
            having = self._expr()
        order_by: List[OrderItem] = []
        if self.accept("kw", "order"):
            self.expect("kw", "by")
            order_by.append(self._order_item())
            while self.accept("sym", ","):
                order_by.append(self._order_item())
        limit = None
        if self.accept("kw", "limit"):
            limit = int(self.expect("number").text)
        self.expect("eof")
        return SelectStmt(
            items=items,
            table=table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _join(self) -> JoinClause:
        self.accept("kw", "inner")
        self.expect("kw", "join")
        table = self.expect("ident").text
        self.expect("kw", "on")
        left = self._column_name()
        self.expect("sym", "=")
        right = self._column_name()
        return JoinClause(table=table, left_on=left, right_on=right)

    def _select_list(self) -> List[SelectItem]:
        if self.accept("sym", "*"):
            return []  # empty select list means SELECT *
        items = [self._select_item()]
        while self.accept("sym", ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr: object
        if self.cur.kind == "kw" and self.cur.text in _AGG_NAMES:
            fn = _AGG_NAMES[self.advance().text]
            self.expect("sym", "(")
            if self.accept("sym", "*"):
                if fn != "count":
                    raise SQLSyntaxError(f"{fn}(*) is not valid SQL")
                expr = AggCall(fn, None)
            else:
                inner = self._expr()
                if isinstance(inner, Col):
                    expr = AggCall(fn, inner.name)
                else:
                    expr = AggCall(fn, None, expr=inner)
            self.expect("sym", ")")
        else:
            expr = self._expr()
        alias = None
        if self.accept("kw", "as"):
            alias = self.expect("ident").text
        return SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> OrderItem:
        column = self._column_name()
        ascending = True
        if self.accept("kw", "desc"):
            ascending = False
        else:
            self.accept("kw", "asc")
        return OrderItem(column=column, ascending=ascending)

    def _column_name(self) -> str:
        name = self.expect("ident").text
        if self.accept("sym", "."):
            name = self.expect("ident").text  # drop the qualifier
        return name

    # -- expressions (precedence climbing) --------------------------------------

    def _expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self.accept("kw", "or"):
            left = BinOp("or", left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self.accept("kw", "and"):
            left = BinOp("and", left, self._not())
        return left

    def _not(self) -> Expr:
        if self.accept("kw", "not"):
            return UnaryOp("not", self._not())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        if self.cur.kind == "sym" and self.cur.text in _CMP:
            op = _CMP[self.advance().text]
            return BinOp(op, left, self._additive())
        if self.accept("kw", "between"):
            lo = self._additive()
            self.expect("kw", "and")
            hi = self._additive()
            return BinOp("and", BinOp(">=", left, lo), BinOp("<=", left, hi))
        if self.cur.kind == "kw" and self.cur.text in ("in", "not"):
            negated = self.accept("kw", "not") is not None
            if negated and not (self.cur.kind == "kw" and self.cur.text == "in"):
                raise SQLSyntaxError(
                    f"expected IN after NOT at position {self.cur.pos}"
                )
            if self.accept("kw", "in"):
                self.expect("sym", "(")
                values = [self._additive()]
                while self.accept("sym", ","):
                    values.append(self._additive())
                self.expect("sym", ")")
                expr: Expr = BinOp("==", left, values[0])
                for value in values[1:]:
                    expr = BinOp("or", expr, BinOp("==", left, value))
                return UnaryOp("not", expr) if negated else expr
            # bare NOT after an operand is not valid here
            raise SQLSyntaxError(f"unexpected NOT at position {self.cur.pos}")
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self.cur.kind == "sym" and self.cur.text in ("+", "-"):
            op = self.advance().text
            left = BinOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while self.cur.kind == "sym" and self.cur.text in ("*", "/", "%"):
            op = self.advance().text
            left = BinOp(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self.accept("sym", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        if self.accept("sym", "("):
            inner = self._expr()
            self.expect("sym", ")")
            return inner
        if self.cur.kind == "number":
            text = self.advance().text
            return Lit(float(text) if "." in text else int(text))
        if self.cur.kind == "string":
            return Lit(self.advance().text)
        if self.cur.kind == "kw" and self.cur.text in ("true", "false"):
            return Lit(self.advance().text == "true")
        if self.cur.kind == "ident":
            return Col(self._column_name())
        raise SQLSyntaxError(
            f"unexpected token {self.cur.text!r} at position {self.cur.pos}"
        )


def parse_select(sql: str) -> SelectStmt:
    """Parse one SELECT statement (trailing semicolon allowed)."""
    sql = sql.strip().rstrip(";")
    return _Parser(sql).parse()
