"""SQL tokenizer for the declarative tier's SQL frontend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Token", "tokenize", "SQLSyntaxError", "KEYWORDS"]

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "join", "inner", "on", "as", "and", "or", "not", "asc", "desc",
    "between", "in", "sum", "count", "avg", "min", "max", "true", "false",
}

_SYMBOLS = ("<=", ">=", "<>", "!=", "==", "=", "<", ">", "+", "-", "*", "/", "%",
            "(", ")", ",", ".")


class SQLSyntaxError(ValueError):
    pass


@dataclass(frozen=True)
class Token:
    kind: str  # "kw" | "ident" | "number" | "string" | "sym" | "eof"
    text: str
    pos: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = sql.find("'", i + 1)
            if j < 0:
                raise SQLSyntaxError(f"unterminated string literal at {i}")
            tokens.append(Token("string", sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                seen_dot = seen_dot or sql[j] == "."
                j += 1
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            kind = "kw" if word.lower() in KEYWORDS else "ident"
            tokens.append(Token(kind, word.lower() if kind == "kw" else word, i))
            i = j
            continue
        for sym in _SYMBOLS:
            if sql.startswith(sym, i):
                tokens.append(Token("sym", sym, i))
                i += len(sym)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens
