"""SQL frontend: declarative SQL -> relational IR -> FlowGraph."""

from .ast import AggCall, JoinClause, OrderItem, SelectItem, SelectStmt
from .lexer import SQLSyntaxError, Token, tokenize
from .parser import parse_select
from .planner import SQLPlanError, plan_select, sql_to_ir

__all__ = [
    "tokenize",
    "Token",
    "SQLSyntaxError",
    "parse_select",
    "SelectStmt",
    "SelectItem",
    "JoinClause",
    "OrderItem",
    "AggCall",
    "plan_select",
    "sql_to_ir",
    "SQLPlanError",
]
