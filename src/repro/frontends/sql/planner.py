"""Plan a parsed SELECT into relational-dialect IR.

The planner is the "domain-specific parser" of §2.1 step (1): declarations
are "translated onto a common graph", here a single-function relational IR
that the shared lowering/optimization pipeline takes from there.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from ...ir.core import Builder, Function, Operation
from ...ir.expr import Col, Expr
from ...ir.types import FrameType
from .ast import AggCall, SelectStmt
from .parser import parse_select

__all__ = ["plan_select", "sql_to_ir", "SQLPlanError"]


class SQLPlanError(ValueError):
    pass


def _expr_dtype(expr: Expr, frame: FrameType) -> str:
    """Infer a result dtype for a scalar expression over ``frame``."""
    cols = expr.referenced_columns()
    if not cols:
        return "float64"
    dtypes = {frame.dtype_of(c) for c in cols}
    if len(dtypes) == 1:
        only = next(iter(dtypes))
        if isinstance(expr, Col):
            return only
    # comparisons yield bool; arithmetic promotes to float64
    text = repr(expr)
    if any(op in text for op in ("==", "!=", "<", ">", " and ", " or ")):
        return "bool"
    return "float64"


def plan_select(
    stmt: SelectStmt, catalog: Mapping[str, FrameType], name: str = "query"
) -> Function:
    """Lower a SELECT statement onto relational IR ops."""
    builder = Builder(name)
    if stmt.table not in catalog:
        raise SQLPlanError(f"unknown table {stmt.table!r}; have {sorted(catalog)}")
    current = builder.emit(
        "relational", "scan", (), {"table": stmt.table, "schema": catalog[stmt.table]}
    )

    for join in stmt.joins:
        if join.table not in catalog:
            raise SQLPlanError(f"unknown join table {join.table!r}")
        right = builder.emit(
            "relational",
            "scan",
            (),
            {"table": join.table, "schema": catalog[join.table]},
        )
        current = builder.emit(
            "relational",
            "join",
            [current.result(), right.result()],
            {"left_on": join.left_on, "right_on": join.right_on},
        )

    if stmt.where is not None:
        current = builder.emit(
            "relational", "filter", [current.result()], {"pred": stmt.where}
        )

    if stmt.is_aggregate:
        current = _plan_aggregate(builder, stmt, current)
    elif stmt.items:
        current = _plan_projection(builder, stmt, current)

    if stmt.distinct and not stmt.is_aggregate:  # GROUP BY already dedups keys
        current = builder.emit("relational", "distinct", [current.result()], {})

    if stmt.having is not None:
        if not stmt.is_aggregate:
            raise SQLPlanError("HAVING requires GROUP BY / aggregates")
        current = builder.emit(
            "relational", "filter", [current.result()], {"pred": stmt.having}
        )

    if stmt.order_by:
        directions = {o.ascending for o in stmt.order_by}
        if len(directions) > 1:
            raise SQLPlanError("mixed ASC/DESC sort directions are not supported")
        current = builder.emit(
            "relational",
            "sort",
            [current.result()],
            {
                "by": tuple(o.column for o in stmt.order_by),
                "ascending": stmt.order_by[0].ascending,
            },
        )

    if stmt.limit is not None:
        current = builder.emit(
            "relational", "limit", [current.result()], {"n": stmt.limit}
        )

    func = builder.ret(current.result())
    func.verify()
    return func


def _plan_projection(builder: Builder, stmt: SelectStmt, current: Operation) -> Operation:
    frame = current.result().type
    assert isinstance(frame, FrameType)
    columns: List[str] = []
    derived: List[Tuple[str, Expr, str]] = []
    for item in stmt.items:
        expr = item.expr
        assert isinstance(expr, Expr)
        if isinstance(expr, Col) and item.alias is None:
            columns.append(expr.name)
        else:
            derived.append((item.output_name, expr, _expr_dtype(expr, frame)))
    return builder.emit(
        "relational",
        "project",
        [current.result()],
        {"columns": tuple(columns), "derived": tuple(derived)},
    )


def _plan_aggregate(builder: Builder, stmt: SelectStmt, current: Operation) -> Operation:
    frame = current.result().type
    assert isinstance(frame, FrameType)
    keys = tuple(stmt.group_by)
    aggs: List[Tuple[str, str, str]] = []
    derived_inputs: List[Tuple[str, Expr, str]] = []  # SUM(expr) pre-projection
    for item in stmt.items:
        expr = item.expr
        if isinstance(expr, AggCall):
            if expr.expr is not None:  # aggregate over a scalar expression
                tmp = f"__agg_in{len(derived_inputs)}"
                derived_inputs.append((tmp, expr.expr, "float64"))
                aggs.append((item.output_name, expr.fn, tmp))
                continue
            column = expr.column
            if column is None:  # COUNT(*)
                column = frame.names[0]
            aggs.append((item.output_name, expr.fn, column))
        elif isinstance(expr, Col):
            if expr.name not in keys:
                raise SQLPlanError(
                    f"non-aggregated column {expr.name!r} must appear in GROUP BY"
                )
        else:
            raise SQLPlanError(
                "aggregate queries may only select group keys and aggregates"
            )
    if not aggs:
        raise SQLPlanError("GROUP BY without any aggregate in the select list")
    if derived_inputs:
        current = builder.emit(
            "relational",
            "project",
            [current.result()],
            {"columns": tuple(frame.names), "derived": tuple(derived_inputs)},
        )
    return builder.emit(
        "relational",
        "aggregate",
        [current.result()],
        {"keys": keys, "aggs": tuple(aggs)},
    )


def sql_to_ir(
    sql: str, catalog: Mapping[str, FrameType], name: str = "query"
) -> Function:
    """Parse + plan in one step."""
    return plan_select(parse_select(sql), catalog, name=name)
