"""MapReduce frontend: classic map/shuffle/reduce jobs as FlowGraphs.

One of the execution models §1 requires the runtime to host ("BSP",
MapReduce [16]).  A job's mapper emits a keyed RecordBatch; the keyed edge
becomes a hash shuffle in the physical graph; the reducer folds each key
group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

import numpy as np

from ..caching.columnar import RecordBatch, concat_batches
from ..flowgraph.launch import launch_physical_graph
from ..flowgraph.logical import FlowGraph
from ..flowgraph.physical import to_physical
from ..runtime.runtime import ServerlessRuntime

__all__ = ["MapReduceJob", "group_apply"]


def group_apply(
    batch: RecordBatch, key: str, fn: Callable[[Any, RecordBatch], Dict[str, Any]]
) -> RecordBatch:
    """Apply ``fn(key_value, group_batch) -> row dict`` per key group."""
    keys = batch.column(key)
    order = np.argsort(keys, kind="stable")
    sorted_batch = batch.take(order)
    sorted_keys = sorted_batch.column(key)
    if batch.num_rows == 0:
        raise ValueError("group_apply over an empty batch: no schema for output")
    boundaries = [0] + (np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1).tolist()
    boundaries.append(batch.num_rows)
    rows: List[Dict[str, Any]] = [
        fn(sorted_keys[lo], sorted_batch.slice(lo, hi - lo))
        for lo, hi in zip(boundaries[:-1], boundaries[1:], strict=False)
    ]
    columns = {name: np.asarray([r[name] for r in rows]) for name in rows[0]}
    return RecordBatch.from_arrays(columns)


@dataclass
class MapReduceJob:
    """A map/shuffle/reduce job over a RecordBatch input.

    ``mapper(batch) -> RecordBatch`` must emit a column named ``key``;
    ``reducer(key_value, group) -> row dict`` folds one key group.
    """

    mapper: Callable[[RecordBatch], RecordBatch]
    reducer: Callable[[Any, RecordBatch], Dict[str, Any]]
    key: str
    map_parallelism: int = 4
    reduce_parallelism: int = 2
    map_cost: float = 1e-3
    reduce_cost: float = 1e-3

    def to_flowgraph(self, table_name: str = "input") -> FlowGraph:
        graph = FlowGraph("mapreduce")
        source = graph.add_vertex(
            "source", source_table=table_name, parallelism=self.map_parallelism
        )
        mapper = self.mapper
        reducer = self.reducer
        key = self.key

        def run_map(batch: RecordBatch) -> RecordBatch:
            out = mapper(batch)
            if key not in out.schema.names:
                raise KeyError(
                    f"mapper output is missing the shuffle key column {key!r}"
                )
            return out

        def run_reduce(batch: RecordBatch) -> RecordBatch:
            if batch.num_rows == 0:
                return batch
            return group_apply(batch, key, reducer)

        map_vertex = graph.add_vertex(
            "map",
            py_func=run_map,
            parallelism=self.map_parallelism,
            compute_cost=self.map_cost,
        )
        reduce_vertex = graph.add_vertex(
            "reduce",
            py_func=run_reduce,
            parallelism=self.reduce_parallelism,
            compute_cost=self.reduce_cost,
        )
        graph.add_edge(source, map_vertex)
        graph.add_edge(map_vertex, reduce_vertex, key=self.key)
        graph.validate()
        return graph

    def run(
        self, runtime: ServerlessRuntime, table: RecordBatch, table_name: str = "input"
    ) -> RecordBatch:
        """Execute distributed on the runtime; returns the merged result."""
        graph = self.to_flowgraph(table_name)
        pgraph = to_physical(graph)
        outputs = launch_physical_graph(runtime, pgraph, tables={table_name: table})
        reduce_vertex = next(v for v in graph.vertices.values() if v.name == "reduce")
        shards = runtime.get(outputs[reduce_vertex.vertex_id])
        # reduce shards that received no keys return an empty batch with the
        # mapper's schema; drop them before merging
        nonempty = [b for b in shards if b.num_rows]
        if not nonempty:
            raise ValueError("mapreduce job produced no output rows")
        return concat_batches(nonempty)

    def run_local(self, table: RecordBatch) -> RecordBatch:
        """Single-process oracle used by tests to check the distributed run."""
        mapped = self.mapper(table)
        return group_apply(mapped, self.key, self.reducer)
