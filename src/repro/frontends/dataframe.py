"""A Daphne-like lazy dataframe API over the relational IR.

The paper plans to build its access layer on Daphne because it has "tiered
declarative APIs, an MLIR-based DSL, and abstractions like data frames"
(§2.2).  This module is that tier: a lazy builder whose plans lower onto
the same relational dialect the SQL frontend targets, so both frontends
share every optimization and backend below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple

from ..caching.columnar import RecordBatch
from ..ir.core import Builder, Function
from ..ir.expr import Expr
from ..ir.interpreter import run_function
from ..ir.types import FrameType

__all__ = ["DataFrame", "from_table", "from_batch"]


def _frame_type_of(batch: RecordBatch) -> FrameType:
    return FrameType(tuple((f.name, f.dtype.name) for f in batch.schema.fields))


@dataclass(frozen=True)
class _Plan:
    """One logical plan node; ``kind`` selects the relational op."""

    kind: str
    children: Tuple["_Plan", ...]
    attrs: Tuple[Tuple[str, Any], ...]

    def attr(self, key: str) -> Any:
        return dict(self.attrs)[key]


class DataFrame:
    """An immutable, lazy dataframe: operations build a plan tree."""

    def __init__(self, plan: _Plan, schema: FrameType):
        self._plan = plan
        self.schema = schema

    # -- constructors --------------------------------------------------------

    @staticmethod
    def table(name: str, schema: FrameType) -> "DataFrame":
        plan = _Plan("scan", (), (("table", name), ("schema", schema)))
        return DataFrame(plan, schema)

    # -- transformations ------------------------------------------------------

    def _derive(self, kind: str, attrs: Dict[str, Any], schema: FrameType) -> "DataFrame":
        plan = _Plan(kind, (self._plan,), tuple(sorted(attrs.items())))
        return DataFrame(plan, schema)

    def filter(self, pred: Expr) -> "DataFrame":
        for name in pred.referenced_columns():
            if not self.schema.has_column(name):
                raise KeyError(f"filter references unknown column {name!r}")
        return self._derive("filter", {"pred": pred}, FrameType(self.schema.columns))

    def select(self, *columns: str, **derived: Expr) -> "DataFrame":
        cols = tuple(columns)
        derived_specs = tuple(
            (name, expr, "float64") for name, expr in derived.items()
        )
        out_cols = [(c, self.schema.dtype_of(c)) for c in cols]
        out_cols += [(name, "float64") for name, _, _ in derived_specs]
        return self._derive(
            "project",
            {"columns": cols, "derived": derived_specs},
            FrameType(tuple(out_cols)),
        )

    def join(self, other: "DataFrame", left_on: str, right_on: str) -> "DataFrame":
        columns = list(self.schema.columns)
        taken = {c for c, _ in columns}
        for name, dt in other.schema.columns:
            if name == right_on:
                continue
            out = name if name not in taken else f"r_{name}"
            columns.append((out, dt))
            taken.add(out)
        plan = _Plan(
            "join",
            (self._plan, other._plan),
            (("left_on", left_on), ("right_on", right_on)),
        )
        return DataFrame(plan, FrameType(tuple(columns)))

    def groupby(self, *keys: str) -> "GroupedFrame":
        for key in keys:
            if not self.schema.has_column(key):
                raise KeyError(f"groupby key {key!r} not in schema")
        return GroupedFrame(self, keys)

    def sort(self, *by: str, ascending: bool = True) -> "DataFrame":
        return self._derive(
            "sort", {"by": tuple(by), "ascending": ascending}, FrameType(self.schema.columns)
        )

    def limit(self, n: int) -> "DataFrame":
        return self._derive("limit", {"n": n}, FrameType(self.schema.columns))

    # -- lowering / execution ----------------------------------------------------

    def to_ir(self, name: str = "df_query") -> Function:
        """Lower the plan tree onto relational IR."""
        builder = Builder(name)

        def emit(plan: _Plan):
            operands = [emit(child).result() for child in plan.children]
            kind_map = {
                "scan": "scan",
                "filter": "filter",
                "project": "project",
                "join": "join",
                "aggregate": "aggregate",
                "sort": "sort",
                "limit": "limit",
            }
            return builder.emit(
                "relational", kind_map[plan.kind], operands, dict(plan.attrs)
            )

        func = builder.ret(emit(self._plan).result())
        func.verify()
        return func

    def collect(self, tables: Mapping[str, RecordBatch]) -> RecordBatch:
        """Execute eagerly with the reference interpreter."""
        (out,) = run_function(self.to_ir(), tables=tables)
        return out

    def __repr__(self) -> str:
        return f"DataFrame({self.schema!r})"


class GroupedFrame:
    """Intermediate for ``df.groupby(...).agg(...)``."""

    def __init__(self, frame: DataFrame, keys: Sequence[str]):
        self._frame = frame
        self._keys = tuple(keys)

    def agg(self, **aggs: Tuple[str, str]) -> DataFrame:
        """``agg(total=("sum", "amount"), n=("count", "oid"))``"""
        if not aggs:
            raise ValueError("agg() needs at least one aggregate")
        spec = tuple((out, fn, col) for out, (fn, col) in aggs.items())
        columns = [(k, self._frame.schema.dtype_of(k)) for k in self._keys]
        for out, fn, colname in spec:
            if fn == "count":
                columns.append((out, "int64"))
            elif fn == "mean":
                columns.append((out, "float64"))
            else:
                columns.append((out, self._frame.schema.dtype_of(colname)))
        return self._frame._derive(
            "aggregate",
            {"keys": self._keys, "aggs": spec},
            FrameType(tuple(columns)),
        )


def from_table(name: str, schema: FrameType) -> DataFrame:
    return DataFrame.table(name, schema)


def from_batch(name: str, batch: RecordBatch) -> DataFrame:
    """Convenience: derive the schema from a real batch."""
    return DataFrame.table(name, _frame_type_of(batch))
