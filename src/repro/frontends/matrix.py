"""A Daphne-like lazy matrix API over the linalg dialect.

§2.2: Daphne offers "abstractions like data frames, and matrix operators";
this is the matrix half (the dataframe half lives in
:mod:`repro.frontends.dataframe`).  Expressions build lazily; ``to_ir``
lowers onto linalg ops, so matrix programs flow through the same passes
(fusion!) and backend selection as everything else.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..ir.core import Builder, Function, Value
from ..ir.interpreter import run_function
from ..ir.types import TensorType

__all__ = ["Matrix", "param", "constant"]


class Matrix:
    """A lazy matrix expression; operations build an expression tree."""

    def __init__(self, kind: str, payload: Any, children: Tuple["Matrix", ...],
                 shape: Tuple[Optional[int], ...]):
        self._kind = kind
        self._payload = payload
        self._children = children
        self.shape = shape

    # -- constructors ------------------------------------------------------

    @staticmethod
    def param(name: str, shape: Tuple[Optional[int], ...]) -> "Matrix":
        return Matrix("param", name, (), tuple(shape))

    @staticmethod
    def constant(value: np.ndarray) -> "Matrix":
        value = np.asarray(value, dtype=np.float64)
        return Matrix("constant", value, (), value.shape)

    # -- algebra -----------------------------------------------------------

    def _binary(self, op: str, other: "Matrix") -> "Matrix":
        if not isinstance(other, Matrix):
            other = Matrix.constant(np.asarray(other, dtype=np.float64))
        shape = _broadcast_shapes(self.shape, other.shape)
        return Matrix(op, None, (self, other), shape)

    def __add__(self, other) -> "Matrix":
        return self._binary("add", other)

    def __sub__(self, other) -> "Matrix":
        return self._binary("sub", other)

    def __mul__(self, other) -> "Matrix":
        return self._binary("mul", other)

    def __truediv__(self, other) -> "Matrix":
        return self._binary("div", other)

    def __matmul__(self, other: "Matrix") -> "Matrix":
        if not isinstance(other, Matrix):
            other = Matrix.constant(np.asarray(other, dtype=np.float64))
        if len(self.shape) != 2 or len(other.shape) != 2:
            raise TypeError("matmul needs rank-2 matrices")
        if (
            self.shape[1] is not None
            and other.shape[0] is not None
            and self.shape[1] != other.shape[0]
        ):
            raise TypeError(f"matmul inner dims differ: {self.shape} @ {other.shape}")
        return Matrix("matmul", None, (self, other), (self.shape[0], other.shape[1]))

    def relu(self) -> "Matrix":
        return Matrix("relu", None, (self,), self.shape)

    def sigmoid(self) -> "Matrix":
        return Matrix("sigmoid", None, (self,), self.shape)

    def exp(self) -> "Matrix":
        return Matrix("exp", None, (self,), self.shape)

    def t(self) -> "Matrix":
        if len(self.shape) != 2:
            raise TypeError("transpose needs a rank-2 matrix")
        return Matrix("transpose", None, (self,), (self.shape[1], self.shape[0]))

    def sum(self, axis: Optional[int] = None) -> "Matrix":
        if axis is None:
            shape: Tuple[Optional[int], ...] = ()
        else:
            if not (0 <= axis < len(self.shape)):
                raise ValueError(f"axis {axis} out of range for shape {self.shape}")
            shape = tuple(d for i, d in enumerate(self.shape) if i != axis)
        return Matrix("reduce_sum", axis, (self,), shape)

    def mean(self, axis: Optional[int] = None) -> "Matrix":
        out = self.sum(axis)
        return Matrix("reduce_mean", axis, (self,), out.shape)

    # -- lowering / execution -------------------------------------------------

    def to_ir(self, name: str = "matrix_expr") -> Function:
        builder = Builder(name)
        params: Dict[str, Value] = {}
        cache: Dict[int, Value] = {}

        def emit(node: "Matrix") -> Value:
            if id(node) in cache:
                return cache[id(node)]
            if node._kind == "param":
                value = params.get(node._payload)
                if value is None:
                    value = builder.add_param(
                        node._payload, TensorType(node.shape)
                    )
                    params[node._payload] = value
            elif node._kind == "constant":
                op = builder.emit("linalg", "constant", (), {"value": node._payload})
                value = op.result()
            elif node._kind in ("reduce_sum", "reduce_mean"):
                attrs = {} if node._payload is None else {"axis": node._payload}
                op = builder.emit(
                    "linalg", node._kind, [emit(node._children[0])], attrs
                )
                value = op.result()
            else:
                op = builder.emit(
                    "linalg", node._kind, [emit(c) for c in node._children], {}
                )
                value = op.result()
            cache[id(node)] = value
            return value

        func = builder.ret(emit(self))
        func.verify()
        return func

    def evaluate(self, inputs: Optional[Mapping[str, np.ndarray]] = None) -> np.ndarray:
        (out,) = run_function(self.to_ir(), dict(inputs or {}))
        return out

    def __repr__(self) -> str:
        return f"Matrix<{self._kind}, shape={self.shape}>"


def _broadcast_shapes(a, b):
    # reuse the linalg dialect's dynamic-aware broadcast rules
    from ..ir.dialects.linalg import _broadcast

    return _broadcast(tuple(a), tuple(b))


def param(name: str, shape) -> Matrix:
    return Matrix.param(name, tuple(shape))


def constant(value) -> Matrix:
    return Matrix.constant(value)
