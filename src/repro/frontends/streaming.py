"""Streaming frontend: discretized micro-batch streams on the runtime.

§1 requires the runtime to host systems with a "streaming" execution
model (Naiad, D-Streams).  Following the D-Streams design, a stream is a
sequence of micro-batches; operators are stateless batch transforms plus
windowed aggregations whose state lives in the caching layer between
micro-batches — stateful serverless functions in the paper's sense.

:class:`StreamJob` executes a pipeline of operators over the runtime,
one task per (micro-batch, operator), chaining futures so micro-batch
t+1's ingest overlaps micro-batch t's processing (pipeline parallelism
along the stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..caching.columnar import RecordBatch, concat_batches
from ..ir.expr import Expr
from ..ir.kernels import k_aggregate, k_filter, k_project
from ..runtime.object_ref import ObjectRef
from ..runtime.runtime import ServerlessRuntime

__all__ = [
    "StreamOp",
    "MapOp",
    "FilterOp",
    "WindowAggregate",
    "StreamJob",
    "micro_batches",
]


def micro_batches(
    batch: RecordBatch, batch_rows: int
) -> List[RecordBatch]:
    """Discretize a table into a stream of micro-batches."""
    if batch_rows < 1:
        raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
    return [
        batch.slice(lo, batch_rows)
        for lo in range(0, batch.num_rows, batch_rows)
    ]


class StreamOp:
    """A streaming operator: transforms one micro-batch (plus state)."""

    #: operators with state carry it between micro-batches
    stateful = False

    def apply(self, batch: RecordBatch, state: Any) -> tuple:
        """Returns (output_batch, new_state)."""
        raise NotImplementedError

    def initial_state(self) -> Any:
        return None


@dataclass
class MapOp(StreamOp):
    """Per-batch projection (columns plus derived expressions)."""

    columns: tuple = ()
    derived: tuple = ()  # (name, Expr, dtype)

    def apply(self, batch: RecordBatch, state: Any) -> tuple:
        out = k_project(
            {"columns": self.columns, "derived": self.derived}, batch
        )
        return out, state


@dataclass
class FilterOp(StreamOp):
    pred: Expr = None

    def apply(self, batch: RecordBatch, state: Any) -> tuple:
        return k_filter({"pred": self.pred}, batch), state


@dataclass
class WindowAggregate(StreamOp):
    """Windowed grouped aggregation over micro-batches.

    With ``slide == window`` (the default) windows tumble: each batch
    belongs to exactly one window.  With ``slide < window`` windows
    overlap: one closes every ``slide`` batches, covering the last
    ``window`` batches.  Between closings the operator emits an empty
    batch with the output schema.  State (the pending batches plus a
    position counter) lives in the caching layer between micro-batches.
    """

    keys: tuple = ()
    aggs: tuple = ()  # (out_name, fn, col)
    window: int = 4
    slide: Optional[int] = None  # None: tumbling (slide == window)

    stateful = True

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not self.aggs:
            raise ValueError("WindowAggregate needs at least one aggregate")
        if self.slide is None:
            self.slide = self.window
        if not (1 <= self.slide <= self.window):
            raise ValueError(
                f"slide must be in [1, window]; got slide={self.slide}, "
                f"window={self.window}"
            )

    def initial_state(self) -> Any:
        return ([], 0)  # (pending batches, batches seen)

    def _empty_output(self, sample: RecordBatch) -> RecordBatch:
        full = k_aggregate(
            {"keys": self.keys, "aggs": self.aggs},
            sample.slice(0, 1),
        )
        return full.slice(0, 0)

    def apply(self, batch: RecordBatch, state: Any) -> tuple:
        pending, seen = state
        pending = list(pending) + [batch]
        seen += 1
        if len(pending) > self.window:
            pending = pending[-self.window :]
        closes = seen >= self.window and (seen - self.window) % self.slide == 0
        if not closes:
            return self._empty_output(batch), (pending, seen)
        window_data = concat_batches(pending)
        out = k_aggregate({"keys": self.keys, "aggs": self.aggs}, window_data)
        if self.slide == self.window:
            pending = []  # tumbling: state resets entirely
        return out, (pending, seen)


@dataclass
class StreamJob:
    """A linear pipeline of streaming operators run on the runtime."""

    ops: Sequence[StreamOp]
    op_cost: float = 1e-4

    def run(
        self,
        runtime: ServerlessRuntime,
        batches: Sequence[RecordBatch],
        collect: bool = True,
    ) -> List[RecordBatch]:
        """Process the stream; returns the per-micro-batch final outputs."""
        if not batches:
            raise ValueError("empty stream")
        state_refs: List[Optional[ObjectRef]] = [
            runtime.put(op.initial_state()) if op.stateful else None
            for op in self.ops
        ]
        out_refs: List[ObjectRef] = []
        for t, batch in enumerate(batches):
            current = runtime.put(batch)
            for i, op in enumerate(self.ops):
                if op.stateful:

                    def run_stateful(b, s, op=op):
                        return op.apply(b, s)

                    pair_ref = runtime.submit(
                        run_stateful,
                        (current, state_refs[i]),
                        compute_cost=self.op_cost,
                        name=f"t{t}:{type(op).__name__}",
                    )
                    current = runtime.submit(
                        lambda pair: pair[0], (pair_ref,),
                        compute_cost=1e-6, name=f"t{t}:out{i}",
                    )
                    state_refs[i] = runtime.submit(
                        lambda pair: pair[1], (pair_ref,),
                        compute_cost=1e-6, name=f"t{t}:state{i}",
                    )
                else:

                    def run_stateless(b, op=op):
                        return op.apply(b, None)[0]

                    current = runtime.submit(
                        run_stateless,
                        (current,),
                        compute_cost=self.op_cost,
                        name=f"t{t}:{type(op).__name__}",
                    )
            out_refs.append(current)
        if not collect:
            runtime.run()
            return []
        return runtime.get(out_refs)

    def run_local(self, batches: Sequence[RecordBatch]) -> List[RecordBatch]:
        """Single-process oracle."""
        states = [op.initial_state() for op in self.ops]
        outputs = []
        for batch in batches:
            current = batch
            for i, op in enumerate(self.ops):
                current, states[i] = op.apply(current, states[i])
            outputs.append(current)
        return outputs
