"""Graph-processing frontend: Pregel-style vertex programs.

Covers the "graph" execution model of §1 (PowerGraph/GraphX lineage).
Provides exact single-process algorithms (PageRank, SSSP, connected
components, used as oracles) plus :func:`pagerank_flowgraph`, which unrolls
supersteps into a FlowGraph whose message exchange rides the keyed-edge
shuffle — the distributed path the benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..caching.columnar import RecordBatch
from ..flowgraph.logical import FlowGraph, Vertex

__all__ = [
    "EdgeList",
    "pagerank",
    "sssp",
    "connected_components",
    "pagerank_flowgraph",
    "pagerank_partitioned_flowgraph",
]


@dataclass(frozen=True)
class EdgeList:
    """A directed graph as src/dst arrays over vertices 0..n-1."""

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weight: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if len(self.src) != len(self.dst):
            raise ValueError("src/dst length mismatch")
        if self.weight is not None and len(self.weight) != len(self.src):
            raise ValueError("weight length mismatch")
        for arr in (self.src, self.dst):
            if len(arr) and (arr.min() < 0 or arr.max() >= self.num_vertices):
                raise ValueError("edge endpoint out of range")

    @property
    def num_edges(self) -> int:
        return len(self.src)

    @staticmethod
    def random(num_vertices: int, num_edges: int, seed: int = 0) -> "EdgeList":
        rng = np.random.default_rng(seed)
        return EdgeList(
            num_vertices,
            rng.integers(0, num_vertices, num_edges),
            rng.integers(0, num_vertices, num_edges),
            weight=rng.random(num_edges),
        )

    def out_degree(self) -> np.ndarray:
        deg = np.zeros(self.num_vertices, dtype=np.int64)
        np.add.at(deg, self.src, 1)
        return deg


def pagerank(
    edges: EdgeList, iterations: int = 20, damping: float = 0.85
) -> np.ndarray:
    """Power iteration with dangling-mass redistribution."""
    n = edges.num_vertices
    rank = np.full(n, 1.0 / n)
    deg = edges.out_degree().astype(np.float64)
    dangling = deg == 0
    for _ in range(iterations):
        contrib = np.zeros(n)
        share = np.where(dangling, 0.0, rank / np.maximum(deg, 1.0))
        np.add.at(contrib, edges.dst, share[edges.src])
        dangling_mass = rank[dangling].sum() / n
        rank = (1 - damping) / n + damping * (contrib + dangling_mass)
    return rank


def sssp(edges: EdgeList, source: int, max_iterations: Optional[int] = None) -> np.ndarray:
    """Bellman-Ford single-source shortest paths (weights required)."""
    if edges.weight is None:
        raise ValueError("sssp needs edge weights")
    if not (0 <= source < edges.num_vertices):
        raise ValueError(f"source {source} out of range")
    dist = np.full(edges.num_vertices, np.inf)
    dist[source] = 0.0
    limit = max_iterations or edges.num_vertices - 1
    for _ in range(max(limit, 1)):
        candidate = dist[edges.src] + edges.weight
        new = dist.copy()
        np.minimum.at(new, edges.dst, candidate)
        if np.array_equal(
            new, dist, equal_nan=True
        ):
            break
        dist = new
    return dist


def connected_components(edges: EdgeList, max_iterations: Optional[int] = None) -> np.ndarray:
    """Label propagation over the undirected closure (min label wins)."""
    labels = np.arange(edges.num_vertices, dtype=np.int64)
    limit = max_iterations or edges.num_vertices
    for _ in range(max(limit, 1)):
        new = labels.copy()
        np.minimum.at(new, edges.dst, labels[edges.src])
        np.minimum.at(new, edges.src, labels[edges.dst])
        if np.array_equal(new, labels):
            break
        labels = new
    # compress chains: propagate each label to its root
    for _ in range(edges.num_vertices):
        root = labels[labels]
        if np.array_equal(root, labels):
            break
        labels = root
    return labels


def pagerank_flowgraph(
    edges: EdgeList,
    iterations: int = 5,
    partitions: int = 4,
    damping: float = 0.85,
) -> Tuple[FlowGraph, Vertex, Dict[str, RecordBatch]]:
    """Unroll PageRank supersteps into a FlowGraph.

    Vertices are hash-partitioned by id; each superstep has one *scatter*
    stage per partition (emit contributions keyed by destination partition)
    and one *gather/apply* stage behind a keyed shuffle edge.  Returns
    (graph, final sink vertex, source tables).

    Note: partitioning here matches the physical tier's hash scheme because
    both use hash_partition on the same key column.
    """
    n = edges.num_vertices
    deg = edges.out_degree().astype(np.float64)
    dangling = deg == 0

    edges_table = RecordBatch.from_arrays(
        {
            "src": edges.src.astype(np.int64),
            "dst": edges.dst.astype(np.int64),
        }
    )
    rank_table = RecordBatch.from_arrays(
        {
            "vid": np.arange(n, dtype=np.int64),
            "rank": np.full(n, 1.0 / n),
        }
    )
    tables = {"edges": edges_table, "rank0": rank_table}

    graph = FlowGraph(f"pagerank[{iterations}]")
    edge_source = graph.add_vertex("edges", source_table="edges", parallelism=1)
    current = graph.add_vertex("rank0", source_table="rank0", parallelism=1)

    def scatter(rank_batch: RecordBatch, edge_batch: RecordBatch) -> RecordBatch:
        rank = np.zeros(n)
        rank[rank_batch.column("vid")] = rank_batch.column("rank")
        share = np.where(dangling, 0.0, rank / np.maximum(deg, 1.0))
        contrib = np.zeros(n)
        np.add.at(contrib, edge_batch.column("dst"), share[edge_batch.column("src")])
        dangling_mass = rank[dangling].sum() / n
        new_rank = (1 - damping) / n + damping * (contrib + dangling_mass)
        return RecordBatch.from_arrays(
            {"vid": np.arange(n, dtype=np.int64), "rank": new_rank}
        )

    for step in range(iterations):
        nxt = graph.add_vertex(
            f"superstep{step}",
            py_func=scatter,
            compute_cost=max(edges.num_edges, 1) * 2e-9,
            parallelism=1,
        )
        graph.add_edge(current, nxt, dst_port=0)
        graph.add_edge(edge_source, nxt, dst_port=1)
        current = nxt
    graph.validate()
    return graph, current, tables


def pagerank_partitioned_flowgraph(
    edges: EdgeList,
    iterations: int = 5,
    partitions: int = 4,
    damping: float = 0.85,
) -> Tuple[FlowGraph, Vertex, Dict[str, RecordBatch]]:
    """Truly partitioned Pregel PageRank: P-way sharded supersteps.

    Per superstep, each *scatter* shard emits (dst, contrib) messages for
    the edges out of its vertices (plus zero-rows for its own vertices so
    every vertex reappears downstream); the keyed edge hash-shuffles
    messages to the *apply* shard owning each destination; a parallel
    small reduction computes the global dangling mass, broadcast to every
    apply shard.  Results are numerically identical to :func:`pagerank`.
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    n = edges.num_vertices
    deg = edges.out_degree().astype(np.float64)
    dangling = deg == 0
    src_arr = edges.src.astype(np.int64)
    dst_arr = edges.dst.astype(np.int64)

    tables = {
        "rank0": RecordBatch.from_arrays(
            {"dst": np.arange(n, dtype=np.int64), "rank": np.full(n, 1.0 / n)}
        )
    }
    graph = FlowGraph(f"pagerank-part[{iterations}x{partitions}]")
    current = graph.add_vertex("rank0", source_table="rank0", parallelism=partitions)

    def scatter(state: RecordBatch) -> RecordBatch:
        vids = state.column("dst")
        ranks = state.column("rank")
        # contributions along out-edges of the vertices this shard owns
        mask = np.isin(src_arr, vids)
        rank_of = np.zeros(n)
        rank_of[vids] = ranks
        srcs = src_arr[mask]
        contribs = np.where(
            dangling[srcs], 0.0, rank_of[srcs] / np.maximum(deg[srcs], 1.0)
        )
        # zero-rows keep every owned vertex alive through the shuffle
        return RecordBatch.from_arrays(
            {
                "dst": np.concatenate([dst_arr[mask], vids]),
                "contrib": np.concatenate([contribs, np.zeros(len(vids))]),
            }
        )

    def dangling_mass(state: RecordBatch) -> RecordBatch:
        vids = state.column("dst")
        ranks = state.column("rank")
        mass = float(ranks[dangling[vids]].sum()) / n
        return RecordBatch.from_arrays({"mass": np.asarray([mass])})

    def apply_step(messages: RecordBatch, mass_batch: RecordBatch) -> RecordBatch:
        mass = float(mass_batch.column("mass").sum())
        order = np.argsort(messages.column("dst"), kind="stable")
        vids = messages.column("dst")[order]
        contribs = messages.column("contrib")[order]
        boundaries = np.flatnonzero(
            np.concatenate([[True], vids[1:] != vids[:-1]])
        )
        unique_vids = vids[boundaries]
        sums = np.add.reduceat(contribs, boundaries)
        new_rank = (1 - damping) / n + damping * (sums + mass)
        return RecordBatch.from_arrays({"dst": unique_vids, "rank": new_rank})

    edge_work = max(edges.num_edges, 1) * 2e-9
    for step in range(iterations):
        scatter_v = graph.add_vertex(
            f"scatter{step}", py_func=scatter, parallelism=partitions,
            compute_cost=edge_work,
        )
        graph.add_edge(current, scatter_v)
        mass_v = graph.add_vertex(
            f"dangling{step}", py_func=dangling_mass, parallelism=1,
            compute_cost=n * 1e-9,
        )
        # the dangling reduction gathers the shards of the current state
        graph.add_edge(current, mass_v)
        apply_v = graph.add_vertex(
            f"apply{step}", py_func=apply_step, parallelism=partitions,
            compute_cost=edge_work,
        )
        graph.add_edge(scatter_v, apply_v, dst_port=0, key="dst")
        graph.add_edge(mass_v, apply_v, dst_port=1)  # broadcast
        current = apply_v
    graph.validate()
    return graph, current, tables
