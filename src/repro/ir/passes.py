"""Graph-level optimization passes over IR functions.

§2.2: "A common IR enables graph-level optimizations such as op-fusing
across application domains, in contrast to being confined within one
domain."  ``FuseElementwise`` is exactly that: it fuses elementwise chains
regardless of which dialect (df, linalg) each op came from, so a SQL-derived
``df.where`` can fuse with an ML-derived ``linalg.relu`` in one kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .core import Function, IRVerificationError, Module, Operation, Value
from .dialects.kernel import FusedStep
from .types import IRType

__all__ = [
    "Pass",
    "PassManager",
    "DeadCodeElimination",
    "CommonSubexpressionElimination",
    "ConstantFold",
    "FuseElementwise",
    "PassStats",
    "MiscompileError",
]


@dataclass
class PassStats:
    ops_removed: int = 0
    ops_fused: int = 0
    iterations: int = 0
    # per-pass breakdown (pass name -> its own PassStats), so a caller can
    # tell exactly which pass did what — and the bisection mode can name
    # the guilty one instead of pointing at the aggregate
    per_pass: Dict[str, "PassStats"] = field(default_factory=dict)

    def for_pass(self, name: str) -> "PassStats":
        if name not in self.per_pass:
            self.per_pass[name] = PassStats()
        return self.per_pass[name]

    def aggregate(self) -> None:
        """Fold the per-pass counters back into the top-level fields."""
        self.ops_removed = sum(s.ops_removed for s in self.per_pass.values())
        self.ops_fused = sum(s.ops_fused for s in self.per_pass.values())


def _analysis_session():
    """The thread's active analysis session, if the CLI installed one.

    Imported lazily: ``repro.analysis`` depends on this module, and the
    common (no-session) path must stay import-free and cheap."""
    try:
        from ..analysis.session import current_session
    except ImportError:  # analysis layer absent/optional
        return None
    return current_session()


class MiscompileError(IRVerificationError):
    """Raised in verify-after-each-pass mode: names the first pass whose
    rewrite broke an IR invariant, with the IR before and after it ran."""

    def __init__(
        self,
        pass_name: str,
        function_name: str,
        iteration: int,
        cause: str,
        before_text: str,
        after_text: str,
    ):
        self.pass_name = pass_name
        self.function_name = function_name
        self.iteration = iteration
        self.cause = cause
        self.before_text = before_text
        self.after_text = after_text
        super().__init__(
            f"pass {pass_name!r} miscompiled {function_name!r} "
            f"(iteration {iteration}): {cause}"
        )


class Pass:
    name = "pass"

    def run(self, func: Function, stats: PassStats) -> bool:
        """Apply once; return True when the function changed."""
        raise NotImplementedError


def _replace_uses(func: Function, old: Value, new: Value, after_index: int) -> None:
    for op in func.ops[after_index:]:
        op.operands = [new if v is old else v for v in op.operands]
    func.returns = [new if v is old else v for v in func.returns]


def _is_pure(op: Operation) -> bool:
    try:
        return op.defn.pure
    except KeyError:
        return False  # unknown op: assume side effects, leave it alone


class DeadCodeElimination(Pass):
    """Drop pure ops whose results are never used; impure ops (opaque
    kernel calls) stay even when dead — we cannot see their effects."""

    name = "dce"

    def run(self, func: Function, stats: PassStats) -> bool:
        live = {id(v) for v in func.returns}
        kept: List[Operation] = []
        changed = False
        for op in reversed(func.ops):
            if any(id(r) in live for r in op.results) or not _is_pure(op):
                kept.append(op)
                for operand in op.operands:
                    live.add(id(operand))
            else:
                changed = True
                stats.ops_removed += 1
        kept.reverse()
        func.ops = kept
        return changed


def _attr_key(attrs: Dict[str, Any]) -> str:
    return repr(sorted(attrs.items(), key=lambda kv: kv[0]))


class CommonSubexpressionElimination(Pass):
    """Reuse the result of structurally identical pure ops."""

    name = "cse"

    def run(self, func: Function, stats: PassStats) -> bool:
        seen: Dict[Tuple[str, Tuple[int, ...], str], Value] = {}
        changed = False
        kept: List[Operation] = []
        for index, op in enumerate(func.ops):
            if not _is_pure(op):
                kept.append(op)  # opaque calls are never merged
                continue
            key = (
                op.qualified,
                tuple(id(v) for v in op.operands),
                _attr_key(op.attrs),
            )
            prior = seen.get(key)
            if prior is not None and len(op.results) == 1:
                _replace_uses(func, op.results[0], prior, index)
                stats.ops_removed += 1
                changed = True
                continue
            if len(op.results) == 1:
                seen[key] = op.results[0]
            kept.append(op)
        func.ops = kept
        return changed


class ConstantFold(Pass):
    """Evaluate linalg ops whose operands are all constants at compile time."""

    name = "constant-fold"

    _FOLDABLE_DIALECTS = ("linalg",)

    def run(self, func: Function, stats: PassStats) -> bool:
        from .interpreter import execute_op  # local import: avoid cycle
        from .types import TensorType

        changed = False
        for _index, op in enumerate(list(func.ops)):
            if op.dialect not in self._FOLDABLE_DIALECTS:
                continue
            if op.name == "constant" or len(op.results) != 1:
                continue
            producers = [v.producer for v in op.operands]
            if not producers or any(
                p is None or p.qualified != "linalg.constant" for p in producers
            ):
                continue
            operand_values = [p.attrs["value"] for p in producers]
            try:
                value = execute_op(op, operand_values)
            except Exception:
                continue  # leave anything surprising alone
            import numpy as np

            value = np.asarray(value)
            folded = Operation(
                "linalg",
                "constant",
                [],
                {"value": value},
            )
            result = op.results[0]
            # refresh the result type: folding pins dynamic dims
            result.type = TensorType(value.shape, value.dtype.name)
            result.producer = folded
            folded.results = [result]
            func.ops[func.ops.index(op)] = folded
            stats.ops_removed += 1
            changed = True
        return changed


def _as_fused(op: Operation) -> Tuple[List[Value], List[FusedStep], IRType]:
    """Canonical fused view of an op: (operands, steps, result_type)."""
    if op.qualified == "kernel.fused":
        return list(op.operands), list(op.attrs["steps"]), op.attrs["result_type"]
    step = FusedStep(
        op.dialect,
        op.name,
        tuple(range(len(op.operands))),
        tuple(sorted(op.attrs.items(), key=lambda kv: kv[0])),
    )
    return list(op.operands), [step], op.results[0].type


def _fusable(op: Operation) -> bool:
    if op.qualified == "kernel.fused":
        return True
    try:
        return op.defn.elementwise
    except KeyError:
        return False


class FuseElementwise(Pass):
    """Fuse producer->consumer chains of elementwise ops across dialects."""

    name = "fuse-elementwise"

    def run(self, func: Function, stats: PassStats) -> bool:
        uses = func.uses()
        for _ci, consumer in enumerate(func.ops):
            if not _fusable(consumer):
                continue
            for value in list(consumer.operands):
                producer = value.producer
                if producer is None or not _fusable(producer):
                    continue
                # the producer's result must feed only this consumer
                consumers = uses.get(id(value), [])
                if len(consumers) != 1 or value in func.returns:
                    continue
                self._merge(func, producer, consumer, value)
                stats.ops_fused += 1
                return True  # restart scan: op list changed
        return False

    def _merge(
        self, func: Function, producer: Operation, consumer: Operation, via: Value
    ) -> None:
        p_operands, p_steps, _ = _as_fused(producer)
        c_operands, c_steps, result_type = _as_fused(consumer)
        j = c_operands.index(via)

        new_operands = list(p_operands)
        c_map: Dict[int, int] = {}
        for i, operand in enumerate(c_operands):
            if i == j:
                continue
            try:
                c_map[i] = new_operands.index(operand)  # dedupe shared inputs
            except ValueError:
                c_map[i] = len(new_operands)
                new_operands.append(operand)

        produced_step_ref = -len(p_steps)  # ref to last producer step
        new_steps = list(p_steps)
        for step in c_steps:
            refs = []
            for ref in step.operand_refs:
                if ref >= 0:
                    refs.append(produced_step_ref if ref == j else c_map[ref])
                else:
                    step_index = -ref - 1
                    refs.append(-(step_index + len(p_steps) + 1))
            new_steps.append(FusedStep(step.dialect, step.name, tuple(refs), step.attrs))

        fused = Operation(
            "kernel",
            "fused",
            new_operands,
            {"steps": tuple(new_steps), "result_type": result_type},
        )
        result = consumer.results[0]
        result.producer = fused
        fused.results = [result]

        ops: List[Operation] = []
        for op in func.ops:
            if op is producer:
                continue
            ops.append(fused if op is consumer else op)
        func.ops = ops


class PassManager:
    """Run passes to fixpoint (bounded); collects per-pass statistics.

    With ``verify_each`` the manager re-verifies the function after every
    individual pass application and raises :class:`MiscompileError` naming
    the exact pass that first broke an invariant — pass-level miscompile
    bisection, for free, at the cost of one verify per rewrite.
    """

    def __init__(
        self,
        passes: Optional[List[Pass]] = None,
        max_iterations: int = 50,
        verify_each: bool = False,
    ):
        self.passes = passes or [
            ConstantFold(),
            CommonSubexpressionElimination(),
            FuseElementwise(),
            DeadCodeElimination(),
        ]
        self.max_iterations = max_iterations
        self.verify_each = verify_each

    def run(self, target, verify_each: Optional[bool] = None) -> PassStats:
        session = _analysis_session()
        if verify_each is None:
            # an active analysis session forces bisection mode everywhere
            verify_each = self.verify_each or session is not None
        stats = PassStats()
        functions = (
            list(target.functions.values()) if isinstance(target, Module) else [target]
        )
        for func in functions:
            try:
                for iteration in range(self.max_iterations):
                    changed = False
                    for p in self.passes:
                        sub = stats.for_pass(p.name)
                        while self._apply(p, func, sub, iteration, verify_each):
                            changed = True
                    stats.iterations = iteration + 1
                    if not changed:
                        break
                func.verify()
            except MiscompileError as exc:
                if session is not None:
                    session.record_miscompile(exc)
                raise
        stats.aggregate()
        return stats

    def _apply(
        self, p: Pass, func: Function, sub: PassStats, iteration: int, verify_each: bool
    ) -> bool:
        if not verify_each:
            return p.run(func, sub)
        before = func.to_text()
        changed = p.run(func, sub)
        if not changed:
            return False
        try:
            func.verify()
        except MiscompileError:
            raise
        except IRVerificationError as exc:
            raise MiscompileError(
                pass_name=p.name,
                function_name=func.name,
                iteration=iteration,
                cause=str(exc),
                before_text=before,
                after_text=func.to_text(),
            ) from exc
        return True
