"""The IR's type system: scalars, tensors, and data frames.

Multi-level in the MLIR sense: the ``relational`` dialect works on frame
types, ``linalg`` on tensor types, and lowering refines shapes where known.
Unknown dimensions are ``None`` (dynamic), as in MLIR's ``?``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["IRType", "ScalarType", "TensorType", "FrameType", "f64", "i64", "boolean"]


class IRType:
    """Base type; types are immutable values."""

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class ScalarType(IRType):
    def __init__(self, dtype: str):
        self.dtype = np.dtype(dtype).name

    def __repr__(self) -> str:
        return self.dtype


f64 = ScalarType("float64")
i64 = ScalarType("int64")
boolean = ScalarType("bool")


class TensorType(IRType):
    """shape entries of ``None`` are dynamic (MLIR's ``?``)."""

    def __init__(self, shape: Tuple[Optional[int], ...], dtype: str = "float64"):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype).name
        for dim in self.shape:
            if dim is not None and dim < 0:
                raise ValueError(f"negative tensor dim in {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    def num_elements(self) -> Optional[int]:
        n = 1
        for dim in self.shape:
            if dim is None:
                return None
            n *= dim
        return n

    def __repr__(self) -> str:
        dims = "x".join("?" if d is None else str(d) for d in self.shape)
        return f"tensor<{dims}x{self.dtype}>"


_DTYPE_NAMES: dict = {}


def _dtype_name(dt) -> str:
    try:
        name = _DTYPE_NAMES.get(dt)
    except TypeError:  # unhashable dtype spec: skip the cache
        return np.dtype(dt).name
    if name is None:
        name = np.dtype(dt).name
        _DTYPE_NAMES[dt] = name
    return name


class FrameType(IRType):
    """A record-batch type: ordered (name, dtype) columns, dynamic rows."""

    def __init__(self, columns: Tuple[Tuple[str, str], ...], num_rows: Optional[int] = None):
        self.columns = tuple((name, _dtype_name(dt)) for name, dt in columns)
        self.num_rows = num_rows
        names = [c[0] for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate columns in frame type: {names}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c[0] for c in self.columns)

    def dtype_of(self, name: str) -> str:
        for col, dt in self.columns:
            if col == name:
                return dt
        raise KeyError(f"no column {name!r} in {self!r}")

    def has_column(self, name: str) -> bool:
        return any(c == name for c, _ in self.columns)

    def select(self, names) -> "FrameType":
        return FrameType(tuple((n, self.dtype_of(n)) for n in names), self.num_rows)

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{d}" for n, d in self.columns)
        rows = "?" if self.num_rows is None else str(self.num_rows)
        return f"frame<{rows}; {cols}>"
