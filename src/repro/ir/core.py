"""SSA core of the multi-level IR: values, operations, functions, modules.

Mirrors MLIR's structure at the scale this project needs: a flat SSA region
per function, dialect-namespaced operations with attribute dictionaries,
type inference supplied by each dialect's op definitions, a verifier, and a
deterministic textual form used in golden tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .types import IRType

__all__ = [
    "Value",
    "Operation",
    "Function",
    "Module",
    "Builder",
    "OpDef",
    "register_op",
    "op_def",
    "IRVerificationError",
]


class IRVerificationError(RuntimeError):
    pass


@dataclass(eq=False)
class Value:
    """An SSA value: produced once, used many times."""

    name: str
    type: IRType
    producer: Optional["Operation"] = None

    def __repr__(self) -> str:
        return f"%{self.name}"


# -- op registry ----------------------------------------------------------------

InferFn = Callable[[Sequence[IRType], Dict[str, Any]], List[IRType]]

# Per-op structural invariant: returns an error string, or None when fine.
# This is the dialect's chance to check what type inference cannot see
# (attribute well-formedness, internal references, ...).
VerifyFn = Callable[["Operation"], Optional[str]]


@dataclass(frozen=True)
class OpDef:
    dialect: str
    name: str
    infer: InferFn
    elementwise: bool = False  # fusable into pointwise kernels
    num_operands: Optional[int] = None  # None: variadic
    # Pure ops are freely removable (DCE) and mergeable (CSE); impure ops
    # (opaque handcrafted calls) must stay put even when their result is dead.
    pure: bool = True
    verify: Optional[VerifyFn] = None

    @property
    def qualified(self) -> str:
        return f"{self.dialect}.{self.name}"


_OP_REGISTRY: Dict[Tuple[str, str], OpDef] = {}


def register_op(defn: OpDef) -> OpDef:
    key = (defn.dialect, defn.name)
    if key in _OP_REGISTRY:
        raise ValueError(f"op {defn.qualified} already registered")
    _OP_REGISTRY[key] = defn
    return defn


def op_def(dialect: str, name: str) -> OpDef:
    defn = _OP_REGISTRY.get((dialect, name))
    if defn is None:
        raise KeyError(f"unknown op {dialect}.{name}")
    return defn


@dataclass(eq=False)
class Operation:
    dialect: str
    name: str
    operands: List[Value]
    attrs: Dict[str, Any]
    results: List[Value] = field(default_factory=list)

    @property
    def qualified(self) -> str:
        return f"{self.dialect}.{self.name}"

    @property
    def defn(self) -> OpDef:
        return op_def(self.dialect, self.name)

    def result(self, index: int = 0) -> Value:
        return self.results[index]

    def to_text(self) -> str:
        """One printed line of IR, as it appears inside a function body."""
        results = ", ".join(repr(v) for v in self.results)
        operands = ", ".join(repr(v) for v in self.operands)
        attrs = ""
        if self.attrs:
            inner = ", ".join(f"{k}={_fmt_attr(self.attrs[k])}" for k in sorted(self.attrs))
            attrs = f" {{{inner}}}"
        types = ", ".join(repr(v.type) for v in self.results)
        return f"{results} = {self.qualified}({operands}){attrs} : {types}"

    def __repr__(self) -> str:
        ops = ", ".join(repr(v) for v in self.operands)
        return f"{self.qualified}({ops})"


class Function:
    """A flat SSA function: params, an op list, and returned values."""

    def __init__(self, name: str, params: List[Value]):
        self.name = name
        self.params = params
        self.ops: List[Operation] = []
        self.returns: List[Value] = []

    def verify(self) -> None:
        if len({id(p) for p in self.params}) != len(self.params):
            raise IRVerificationError(f"{self.name}: duplicate parameter value")
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise IRVerificationError(f"{self.name}: duplicate parameter names {names}")
        own_ops = {id(op) for op in self.ops}
        defined = {id(v) for v in self.params}
        for op in self.ops:
            for operand in op.operands:
                if id(operand) not in defined:
                    if operand.producer is not None and id(operand.producer) not in own_ops:
                        raise IRVerificationError(
                            f"{self.name}: {op.qualified} operand {operand!r} is "
                            f"defined by a different function "
                            f"(producer {operand.producer.qualified} is not in "
                            f"{self.name!r}): {op.to_text()}"
                        )
                    raise IRVerificationError(
                        f"{self.name}: {op.qualified} uses {operand!r} before definition"
                    )
            defn = op.defn
            if defn.num_operands is not None and len(op.operands) != defn.num_operands:
                raise IRVerificationError(
                    f"{self.name}: {op.qualified} expects {defn.num_operands} operands, "
                    f"got {len(op.operands)}"
                )
            if defn.verify is not None:
                problem = defn.verify(op)
                if problem is not None:
                    raise IRVerificationError(
                        f"{self.name}: {op.qualified}: {problem}: {op.to_text()}"
                    )
            inferred = defn.infer([v.type for v in op.operands], op.attrs)
            if len(inferred) != len(op.results):
                raise IRVerificationError(
                    f"{self.name}: {op.qualified} result arity mismatch"
                )
            for value, expected in zip(op.results, inferred, strict=False):
                if value.type != expected:
                    raise IRVerificationError(
                        f"{self.name}: {op.qualified} result {value!r} has type "
                        f"{value.type!r}, inference says {expected!r}"
                    )
                if id(value) in defined:
                    raise IRVerificationError(
                        f"{self.name}: duplicate result value {value!r} "
                        f"(already defined earlier): {op.to_text()}"
                    )
                defined.add(id(value))
        for ret in self.returns:
            if id(ret) not in defined:
                raise IRVerificationError(
                    f"{self.name}: returns undefined value {ret!r}"
                )
        self._verify_no_ops_after_return()

    def _verify_no_ops_after_return(self) -> None:
        """The return is the function's terminator: ops past the last one
        that must execute (a returned value's producer, an impure op, or
        anything feeding either) can never be observed — such a tail is
        typically a builder that kept emitting after ``ret``.  Dead pure
        ops *before* that point stay legal; they are DCE's job, not a
        verification failure."""
        if not self.returns:
            return
        live = {id(v) for v in self.returns}
        last_must_execute = -1
        for index in range(len(self.ops) - 1, -1, -1):
            op = self.ops[index]
            try:
                pure = op.defn.pure
            except KeyError:
                pure = False  # unknown op: assume effects
            if not pure or any(id(r) in live for r in op.results):
                last_must_execute = max(last_must_execute, index)
                for operand in op.operands:
                    live.add(id(operand))
        if last_must_execute + 1 < len(self.ops):
            offender = self.ops[last_must_execute + 1]
            raise IRVerificationError(
                f"{self.name}: {offender.qualified} appears after the return: "
                f"{offender.to_text()}"
            )

    def to_text(self) -> str:
        lines = []
        params = ", ".join(f"%{p.name}: {p.type!r}" for p in self.params)
        rets = ", ".join(repr(v.type) for v in self.returns)
        lines.append(f"func @{self.name}({params}) -> ({rets}) {{")
        lines.extend(f"  {op.to_text()}" for op in self.ops)
        returns = ", ".join(repr(v) for v in self.returns)
        lines.append(f"  return {returns}")
        lines.append("}")
        return "\n".join(lines)

    def uses(self) -> Dict[int, List[Operation]]:
        """value id -> consuming ops (plus None marker for returns)."""
        table: Dict[int, List[Operation]] = {}
        for op in self.ops:
            for operand in op.operands:
                table.setdefault(id(operand), []).append(op)
        return table


def _fmt_attr(value: Any) -> str:
    if callable(value):
        return getattr(value, "__name__", "fn")
    return repr(value)


class Module:
    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}

    def add(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"function {func.name!r} already in module")
        self.functions[func.name] = func
        return func

    def func(self, name: str) -> Function:
        if name not in self.functions:
            raise KeyError(f"no function {name!r}; have {sorted(self.functions)}")
        return self.functions[name]

    def verify(self) -> None:
        for func in self.functions.values():
            func.verify()

    def to_text(self) -> str:
        return "\n\n".join(f.to_text() for f in self.functions.values())


class Builder:
    """Append-only construction of a function's SSA body."""

    def __init__(self, name: str):
        self._counter = itertools.count()
        self.function = Function(name, params=[])

    def add_param(self, name: str, type_: IRType) -> Value:
        value = Value(name, type_)
        self.function.params.append(value)
        return value

    def emit(
        self,
        dialect: str,
        name: str,
        operands: Sequence[Value] = (),
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Operation:
        if self.function.returns:
            raise IRVerificationError(
                f"{self.function.name}: cannot emit {dialect}.{name} after the "
                "function already returned"
            )
        defn = op_def(dialect, name)
        attrs = dict(attrs or {})
        result_types = defn.infer([v.type for v in operands], attrs)
        op = Operation(dialect, name, list(operands), attrs)
        op.results = [
            Value(f"v{next(self._counter)}", t, producer=op) for t in result_types
        ]
        self.function.ops.append(op)
        return op

    def ret(self, *values: Value) -> Function:
        self.function.returns = list(values)
        return self.function
