"""SSA core of the multi-level IR: values, operations, functions, modules.

Mirrors MLIR's structure at the scale this project needs: a flat SSA region
per function, dialect-namespaced operations with attribute dictionaries,
type inference supplied by each dialect's op definitions, a verifier, and a
deterministic textual form used in golden tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .types import IRType

__all__ = [
    "Value",
    "Operation",
    "Function",
    "Module",
    "Builder",
    "OpDef",
    "register_op",
    "op_def",
    "IRVerificationError",
]


class IRVerificationError(RuntimeError):
    pass


@dataclass(eq=False)
class Value:
    """An SSA value: produced once, used many times."""

    name: str
    type: IRType
    producer: Optional["Operation"] = None

    def __repr__(self) -> str:
        return f"%{self.name}"


# -- op registry ----------------------------------------------------------------

InferFn = Callable[[Sequence[IRType], Dict[str, Any]], List[IRType]]


@dataclass(frozen=True)
class OpDef:
    dialect: str
    name: str
    infer: InferFn
    elementwise: bool = False  # fusable into pointwise kernels
    num_operands: Optional[int] = None  # None: variadic

    @property
    def qualified(self) -> str:
        return f"{self.dialect}.{self.name}"


_OP_REGISTRY: Dict[Tuple[str, str], OpDef] = {}


def register_op(defn: OpDef) -> OpDef:
    key = (defn.dialect, defn.name)
    if key in _OP_REGISTRY:
        raise ValueError(f"op {defn.qualified} already registered")
    _OP_REGISTRY[key] = defn
    return defn


def op_def(dialect: str, name: str) -> OpDef:
    defn = _OP_REGISTRY.get((dialect, name))
    if defn is None:
        raise KeyError(f"unknown op {dialect}.{name}")
    return defn


@dataclass(eq=False)
class Operation:
    dialect: str
    name: str
    operands: List[Value]
    attrs: Dict[str, Any]
    results: List[Value] = field(default_factory=list)

    @property
    def qualified(self) -> str:
        return f"{self.dialect}.{self.name}"

    @property
    def defn(self) -> OpDef:
        return op_def(self.dialect, self.name)

    def result(self, index: int = 0) -> Value:
        return self.results[index]

    def __repr__(self) -> str:
        ops = ", ".join(repr(v) for v in self.operands)
        return f"{self.qualified}({ops})"


class Function:
    """A flat SSA function: params, an op list, and returned values."""

    def __init__(self, name: str, params: List[Value]):
        self.name = name
        self.params = params
        self.ops: List[Operation] = []
        self.returns: List[Value] = []

    def verify(self) -> None:
        defined = {id(v) for v in self.params}
        for op in self.ops:
            for operand in op.operands:
                if id(operand) not in defined:
                    raise IRVerificationError(
                        f"{self.name}: {op.qualified} uses {operand!r} before definition"
                    )
            defn = op.defn
            if defn.num_operands is not None and len(op.operands) != defn.num_operands:
                raise IRVerificationError(
                    f"{self.name}: {op.qualified} expects {defn.num_operands} operands, "
                    f"got {len(op.operands)}"
                )
            inferred = defn.infer([v.type for v in op.operands], op.attrs)
            if len(inferred) != len(op.results):
                raise IRVerificationError(
                    f"{self.name}: {op.qualified} result arity mismatch"
                )
            for value, expected in zip(op.results, inferred):
                if value.type != expected:
                    raise IRVerificationError(
                        f"{self.name}: {op.qualified} result {value!r} has type "
                        f"{value.type!r}, inference says {expected!r}"
                    )
                defined.add(id(value))
        for ret in self.returns:
            if id(ret) not in defined:
                raise IRVerificationError(
                    f"{self.name}: returns undefined value {ret!r}"
                )

    def to_text(self) -> str:
        lines = []
        params = ", ".join(f"%{p.name}: {p.type!r}" for p in self.params)
        rets = ", ".join(repr(v.type) for v in self.returns)
        lines.append(f"func @{self.name}({params}) -> ({rets}) {{")
        for op in self.ops:
            results = ", ".join(repr(v) for v in op.results)
            operands = ", ".join(repr(v) for v in op.operands)
            attrs = ""
            if op.attrs:
                inner = ", ".join(
                    f"{k}={_fmt_attr(op.attrs[k])}" for k in sorted(op.attrs)
                )
                attrs = f" {{{inner}}}"
            types = ", ".join(repr(v.type) for v in op.results)
            lines.append(f"  {results} = {op.qualified}({operands}){attrs} : {types}")
        returns = ", ".join(repr(v) for v in self.returns)
        lines.append(f"  return {returns}")
        lines.append("}")
        return "\n".join(lines)

    def uses(self) -> Dict[int, List[Operation]]:
        """value id -> consuming ops (plus None marker for returns)."""
        table: Dict[int, List[Operation]] = {}
        for op in self.ops:
            for operand in op.operands:
                table.setdefault(id(operand), []).append(op)
        return table


def _fmt_attr(value: Any) -> str:
    if callable(value):
        return getattr(value, "__name__", "fn")
    return repr(value)


class Module:
    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}

    def add(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"function {func.name!r} already in module")
        self.functions[func.name] = func
        return func

    def func(self, name: str) -> Function:
        if name not in self.functions:
            raise KeyError(f"no function {name!r}; have {sorted(self.functions)}")
        return self.functions[name]

    def verify(self) -> None:
        for func in self.functions.values():
            func.verify()

    def to_text(self) -> str:
        return "\n\n".join(f.to_text() for f in self.functions.values())


class Builder:
    """Append-only construction of a function's SSA body."""

    def __init__(self, name: str):
        self._counter = itertools.count()
        self.function = Function(name, params=[])

    def add_param(self, name: str, type_: IRType) -> Value:
        value = Value(name, type_)
        self.function.params.append(value)
        return value

    def emit(
        self,
        dialect: str,
        name: str,
        operands: Sequence[Value] = (),
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Operation:
        defn = op_def(dialect, name)
        attrs = dict(attrs or {})
        result_types = defn.infer([v.type for v in operands], attrs)
        op = Operation(dialect, name, list(operands), attrs)
        op.results = [
            Value(f"v{next(self._counter)}", t, producer=op) for t in result_types
        ]
        self.function.ops.append(op)
        return op

    def ret(self, *values: Value) -> Function:
        self.function.returns = list(values)
        return self.function
