"""Relational-level rewrite rules: conjunction splitting, filter pushdown.

§2.1 step (2): Skadi "optimizes the graph using predefined rules".  These
are the classic relational rules that matter most in a disaggregated
setting, because pushing filters below joins shrinks exactly the data the
shuffle must move across the fabric:

* :class:`SplitConjunctiveFilter` — ``filter(x, a AND b)`` becomes
  ``filter(filter(x, a), b)`` so each conjunct can move independently;
* :class:`PushFilterThroughJoin` — a filter over a join whose predicate
  touches only one side's columns slides below the join (undoing the
  ``r_`` rename for right-side pushes).

Both operate on the ``relational`` and ``df`` dialects alike.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .core import Function, Operation, Value
from .expr import BinOp, Col, Expr, FuncCall, Lit, UnaryOp
from .passes import Pass, PassStats, _replace_uses
from .types import FrameType

__all__ = [
    "SplitConjunctiveFilter",
    "PushFilterThroughJoin",
    "relational_optimizer",
]

_FILTER_NAMES = {("relational", "filter"), ("df", "where")}
_JOIN_NAMES = {("relational", "join"), ("df", "hash_join")}


def rename_cols(expr: Expr, mapping: Dict[str, str]) -> Expr:
    """Structurally rewrite column references through ``mapping``."""
    if isinstance(expr, Col):
        return Col(mapping.get(expr.name, expr.name))
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rename_cols(expr.left, mapping), rename_cols(expr.right, mapping))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, rename_cols(expr.operand, mapping))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.func, tuple(rename_cols(a, mapping) for a in expr.args))
    raise TypeError(f"unknown expr node {type(expr)}")


class SplitConjunctiveFilter(Pass):
    """filter(x, a AND b)  ->  filter(filter(x, a), b)."""

    name = "split-conjunctions"

    def run(self, func: Function, stats: PassStats) -> bool:
        for index, op in enumerate(func.ops):
            if (op.dialect, op.name) not in _FILTER_NAMES:
                continue
            pred = op.attrs.get("pred")
            if not (isinstance(pred, BinOp) and pred.op == "and"):
                continue
            inner = Operation(
                op.dialect, op.name, list(op.operands), {"pred": pred.left}
            )
            inner_type = op.operands[0].type
            assert isinstance(inner_type, FrameType)
            inner.results = [
                Value("v_split", FrameType(inner_type.columns, None), producer=inner)
            ]
            op.operands = [inner.results[0]]
            op.attrs = {"pred": pred.right}
            func.ops.insert(index, inner)
            return True
        return False


class PushFilterThroughJoin(Pass):
    """Slide one-sided filter predicates below the join they sit on."""

    name = "pushdown-filter-join"

    def run(self, func: Function, stats: PassStats) -> bool:
        uses = func.uses()
        for index, op in enumerate(func.ops):
            if (op.dialect, op.name) not in _FILTER_NAMES:
                continue
            join = op.operands[0].producer
            if join is None or (join.dialect, join.name) not in _JOIN_NAMES:
                continue
            # the join result must feed only this filter
            if len(uses.get(id(op.operands[0]), [])) != 1:
                continue
            if op.operands[0] in func.returns:
                continue
            pred = op.attrs["pred"]
            side = self._sided(pred, join)
            if side is None:
                continue
            operand_index, pushed_pred = side
            self._push(func, op, join, operand_index, pushed_pred, index)
            stats.ops_removed += 0  # structural move, not a removal
            return True
        return False

    def _sided(self, pred: Expr, join: Operation) -> Optional[Tuple[int, Expr]]:
        """Which join input does ``pred`` exclusively reference, if any?"""
        left_type = join.operands[0].type
        right_type = join.operands[1].type
        assert isinstance(left_type, FrameType) and isinstance(right_type, FrameType)
        refs = set(pred.referenced_columns())
        if refs and refs <= set(left_type.names):
            return 0, pred
        # right-side columns may have been renamed with the r_ prefix
        right_on = join.attrs["right_on"]
        out_to_right: Dict[str, str] = {}
        taken = set(left_type.names)
        for name, _dt in right_type.columns:
            if name == right_on:
                continue
            out_name = name if name not in taken else f"r_{name}"
            out_to_right[out_name] = name
            taken.add(out_name)
        if refs and refs <= set(out_to_right):
            return 1, rename_cols(pred, out_to_right)
        return None

    def _push(
        self,
        func: Function,
        filt: Operation,
        join: Operation,
        operand_index: int,
        pred: Expr,
        filter_pos: int,
    ) -> None:
        source = join.operands[operand_index]
        source_type = source.type
        assert isinstance(source_type, FrameType)
        pushed = Operation(
            filt.dialect, filt.name, [source], {"pred": pred}
        )
        pushed.results = [
            Value("v_push", FrameType(source_type.columns, None), producer=pushed)
        ]
        join.operands[operand_index] = pushed.results[0]
        # the filter disappears; its consumers read the join directly
        _replace_uses(func, filt.results[0], join.results[0], filter_pos)
        join_pos = func.ops.index(join)
        func.ops.insert(join_pos, pushed)
        func.ops.remove(filt)


def relational_optimizer() -> List[Pass]:
    """The rule set Skadi applies before lowering relational plans."""
    return [SplitConjunctiveFilter(), PushFilterThroughJoin()]
