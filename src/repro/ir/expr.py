"""Scalar expression trees, shared by the IR, the SQL planner, and the
dataframe frontend.

Expressions are evaluated column-at-a-time over numpy arrays, which is the
vectorized execution model the shared columnar format enables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping

import numpy as np

__all__ = ["Expr", "Col", "Lit", "BinOp", "UnaryOp", "FuncCall", "col", "lit"]

_BINOPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: np.logical_and(a, b),
    "or": lambda a, b: np.logical_or(a, b),
}

_UNARY: Dict[str, Callable[[Any], Any]] = {
    "-": lambda a: -a,
    "not": lambda a: np.logical_not(a),
    "abs": np.abs,
}

_FUNCS: Dict[str, Callable[..., Any]] = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "floor": np.floor,
    "ceil": np.ceil,
}


class Expr:
    """Base scalar expression."""

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> Any:
        raise NotImplementedError

    def referenced_columns(self) -> List[str]:
        out: List[str] = []
        self._collect_cols(out)
        return out

    def _collect_cols(self, out: List[str]) -> None:
        pass

    # operator sugar ---------------------------------------------------------
    def _bin(self, op: str, other: Any) -> "BinOp":
        return BinOp(op, self, _wrap(other))

    def __add__(self, other):
        return self._bin("+", other)

    def __sub__(self, other):
        return self._bin("-", other)

    def __mul__(self, other):
        return self._bin("*", other)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __mod__(self, other):
        return self._bin("%", other)

    def __eq__(self, other):  # type: ignore[override]
        return self._bin("==", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._bin("!=", other)

    def __lt__(self, other):
        return self._bin("<", other)

    def __le__(self, other):
        return self._bin("<=", other)

    def __gt__(self, other):
        return self._bin(">", other)

    def __ge__(self, other):
        return self._bin(">=", other)

    def __and__(self, other):
        return self._bin("and", other)

    def __or__(self, other):
        return self._bin("or", other)

    def __invert__(self):
        return UnaryOp("not", self)

    def __neg__(self):
        return UnaryOp("-", self)

    def __hash__(self):
        return hash(repr(self))


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Lit(value)


@dataclass(frozen=True, eq=False)
class Col(Expr):
    name: str

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> Any:
        if self.name not in columns:
            raise KeyError(f"column {self.name!r} not bound; have {sorted(columns)}")
        return columns[self.name]

    def _collect_cols(self, out: List[str]) -> None:
        out.append(self.name)

    def __repr__(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True, eq=False)
class Lit(Expr):
    value: Any

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> Any:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> Any:
        return _BINOPS[self.op](self.left.evaluate(columns), self.right.evaluate(columns))

    def _collect_cols(self, out: List[str]) -> None:
        self.left._collect_cols(out)
        self.right._collect_cols(out)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class UnaryOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in _UNARY:
            raise ValueError(f"unknown unary op {self.op!r}")

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> Any:
        return _UNARY[self.op](self.operand.evaluate(columns))

    def _collect_cols(self, out: List[str]) -> None:
        self.operand._collect_cols(out)

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


@dataclass(frozen=True, eq=False)
class FuncCall(Expr):
    func: str
    args: tuple

    def __post_init__(self) -> None:
        if self.func not in _FUNCS:
            raise ValueError(f"unknown function {self.func!r}; have {sorted(_FUNCS)}")

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> Any:
        return _FUNCS[self.func](*(a.evaluate(columns) for a in self.args))

    def _collect_cols(self, out: List[str]) -> None:
        for a in self.args:
            a._collect_cols(out)

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


def col(name: str) -> Col:
    return Col(name)


def lit(value: Any) -> Lit:
    return Lit(value)
