"""Dialect registration: importing this package registers all ops."""

from . import relational, df, linalg, kernel  # noqa: F401  (registration side effects)

__all__ = ["relational", "df", "linalg", "kernel"]
