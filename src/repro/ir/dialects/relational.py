"""The ``relational`` dialect: logical query-plan operations on frames.

This is the top of the multi-level IR — what the SQL frontend emits.  It is
lowered to the physical ``df`` dialect by
:func:`repro.ir.lowering.lower_relational_to_df`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from ..core import OpDef, Operation, register_op
from ..expr import Expr
from ..types import FrameType, IRType

__all__ = ["AGG_FUNCS"]

AGG_FUNCS = ("sum", "count", "mean", "min", "max")


def _frame(types: Sequence[IRType], index: int = 0) -> FrameType:
    t = types[index]
    if not isinstance(t, FrameType):
        raise TypeError(f"expected frame operand, got {t!r}")
    return t


def _infer_scan(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    schema = attrs.get("schema")
    if not isinstance(schema, FrameType):
        raise TypeError("relational.scan needs a 'schema' FrameType attribute")
    if "table" not in attrs:
        raise KeyError("relational.scan needs a 'table' attribute")
    return [schema]


def _infer_filter(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    frame = _frame(types)
    pred = attrs.get("pred")
    if not isinstance(pred, Expr):
        raise TypeError("relational.filter needs a 'pred' Expr attribute")
    for name in pred.referenced_columns():
        if not frame.has_column(name):
            raise KeyError(f"filter predicate references unknown column {name!r}")
    # FrameType is immutable, so when the shape is unchanged the operand's
    # type object is shared rather than renormalized column by column
    return [frame if frame.num_rows is None else FrameType(frame.columns, None)]


def _infer_project(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    frame = _frame(types)
    columns = tuple(attrs.get("columns", ()))
    derived = tuple(attrs.get("derived", ()))  # (name, Expr, dtype)
    out = [(name, frame.dtype_of(name)) for name in columns]
    for name, expr, dtype in derived:
        if not isinstance(expr, Expr):
            raise TypeError(f"derived column {name!r} needs an Expr")
        for ref in expr.referenced_columns():
            if not frame.has_column(ref):
                raise KeyError(f"derived column {name!r} references unknown {ref!r}")
        out.append((name, np.dtype(dtype).name))
    if not out:
        raise ValueError("relational.project produces no columns")
    return [FrameType(tuple(out), frame.num_rows)]


def _infer_join(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    left, right = _frame(types, 0), _frame(types, 1)
    left_on, right_on = attrs.get("left_on"), attrs.get("right_on")
    if not left_on or not right_on:
        raise KeyError("relational.join needs 'left_on' and 'right_on'")
    if not left.has_column(left_on):
        raise KeyError(f"join key {left_on!r} missing from left frame")
    if not right.has_column(right_on):
        raise KeyError(f"join key {right_on!r} missing from right frame")
    columns = list(left.columns)
    taken = {c for c, _ in columns}
    for name, dt in right.columns:
        if name == right_on:
            continue
        out_name = name if name not in taken else f"r_{name}"
        columns.append((out_name, dt))
        taken.add(out_name)
    return [FrameType(tuple(columns), num_rows=None)]


def _infer_aggregate(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    frame = _frame(types)
    keys = tuple(attrs.get("keys", ()))
    aggs = tuple(attrs.get("aggs", ()))  # (out_name, fn, col)
    if not aggs:
        raise ValueError("relational.aggregate needs at least one agg")
    dtype_by_col = dict(frame.columns)
    columns = []
    for k in keys:
        if k not in dtype_by_col:
            raise KeyError(f"no column {k!r} in {frame!r}")
        columns.append((k, dtype_by_col[k]))
    for out_name, fn, colname in aggs:
        if fn not in AGG_FUNCS:
            raise ValueError(f"unknown agg fn {fn!r}; have {AGG_FUNCS}")
        if fn == "count":
            columns.append((out_name, "int64"))
        elif fn == "mean":
            columns.append((out_name, "float64"))
        else:
            if colname not in dtype_by_col:
                raise KeyError(f"no column {colname!r} in {frame!r}")
            columns.append((out_name, dtype_by_col[colname]))
    return [FrameType(tuple(columns), num_rows=None)]


def _infer_sort(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    frame = _frame(types)
    by = tuple(attrs.get("by", ()))
    if not by:
        raise KeyError("relational.sort needs a 'by' attribute")
    for name in by:
        if not frame.has_column(name):
            raise KeyError(f"sort key {name!r} missing")
    return [frame]


def _infer_distinct(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    frame = _frame(types)
    return [frame if frame.num_rows is None else FrameType(frame.columns, None)]


def _infer_limit(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    frame = _frame(types)
    n = attrs.get("n")
    if not isinstance(n, int) or n < 0:
        raise ValueError(f"relational.limit needs a non-negative int 'n', got {n!r}")
    return [frame if frame.num_rows is None else FrameType(frame.columns, None)]


# -- structural verify hooks (shared with the physical ``df`` dialect) -----------


def _verify_scan(op: Operation) -> "str | None":
    table = op.attrs.get("table")
    if not isinstance(table, str) or not table:
        return f"'table' attribute must be a non-empty table name, got {table!r}"
    return None


def _verify_aggregate(op: Operation) -> "str | None":
    for agg in op.attrs.get("aggs", ()):
        if not (
            isinstance(agg, tuple)
            and len(agg) == 3
            and isinstance(agg[0], str)
            and isinstance(agg[1], str)
            and isinstance(agg[2], str)
        ):
            return f"each agg must be an (out_name, fn, column) string triple, got {agg!r}"
    return None


def _verify_sort(op: Operation) -> "str | None":
    ascending = op.attrs.get("ascending", True)
    if not isinstance(ascending, bool):
        return f"'ascending' attribute must be a bool, got {ascending!r}"
    return None


register_op(OpDef("relational", "scan", _infer_scan, num_operands=0, verify=_verify_scan))
register_op(OpDef("relational", "filter", _infer_filter, num_operands=1))
register_op(OpDef("relational", "project", _infer_project, num_operands=1))
register_op(OpDef("relational", "join", _infer_join, num_operands=2))
register_op(
    OpDef("relational", "aggregate", _infer_aggregate, num_operands=1, verify=_verify_aggregate)
)
register_op(OpDef("relational", "sort", _infer_sort, num_operands=1, verify=_verify_sort))
register_op(OpDef("relational", "limit", _infer_limit, num_operands=1))
register_op(OpDef("relational", "distinct", _infer_distinct, num_operands=1))
