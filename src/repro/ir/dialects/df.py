"""The ``df`` dialect: physical dataframe operations on record batches.

The mid-level of the IR (the Daphne-like tier): relational ops lower onto
these with algorithm choices made explicit (hash join, hash aggregate).
``where`` and ``derive`` are elementwise and thus fusable by the
``FuseElementwise`` pass into single kernels.
"""

from __future__ import annotations

from ..core import OpDef, register_op
from . import relational as _rel

# The df dialect's physical ops share the relational inference rules — the
# type algebra is identical; only execution strategy differs.

register_op(
    OpDef("df", "source", _rel._infer_scan, num_operands=0, verify=_rel._verify_scan)
)
register_op(OpDef("df", "where", _rel._infer_filter, num_operands=1, elementwise=True))
register_op(OpDef("df", "select", _rel._infer_project, num_operands=1, elementwise=True))
register_op(OpDef("df", "hash_join", _rel._infer_join, num_operands=2))
register_op(
    OpDef(
        "df",
        "hash_aggregate",
        _rel._infer_aggregate,
        num_operands=1,
        verify=_rel._verify_aggregate,
    )
)
register_op(OpDef("df", "sort", _rel._infer_sort, num_operands=1, verify=_rel._verify_sort))
register_op(OpDef("df", "limit", _rel._infer_limit, num_operands=1))
register_op(OpDef("df", "distinct", _rel._infer_distinct, num_operands=1))
