"""The ``kernel`` dialect: the bottom of the IR.

``kernel.fused`` packages a chain of elementwise steps produced by the
fusion pass into one launch — the cross-domain op-fusing §2.2 argues a
common IR enables.  ``kernel.call`` invokes a handcrafted (predefined)
operator from the kernel registry, the escape hatch Figure 2 shows as
"cudf ops / misc ops".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..core import OpDef, Operation, register_op
from ..types import IRType

__all__ = ["FusedStep"]


@dataclass(frozen=True)
class FusedStep:
    """One step inside a fused kernel.

    ``operand_refs`` index into the fused op's operand list when >= 0; a
    negative ref ``-(k+1)`` refers to the result of step ``k`` (so ``-1``
    is step 0's result, ``-2`` step 1's, ...).
    """

    dialect: str
    name: str
    operand_refs: Tuple[int, ...]
    attrs: Tuple[Tuple[str, Any], ...] = ()

    @property
    def qualified(self) -> str:
        return f"{self.dialect}.{self.name}"

    def attrs_dict(self) -> Dict[str, Any]:
        return dict(self.attrs)


def _infer_fused(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    result_type = attrs.get("result_type")
    if result_type is None:
        raise KeyError("kernel.fused needs a precomputed 'result_type'")
    steps = attrs.get("steps")
    if not steps:
        raise KeyError("kernel.fused needs a non-empty 'steps' tuple")
    for step in steps:
        if not isinstance(step, FusedStep):
            raise TypeError(f"fused step must be FusedStep, got {type(step)}")
    return [result_type]


def _infer_call(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    result_type = attrs.get("result_type")
    if result_type is None:
        raise KeyError("kernel.call needs a 'result_type' attribute")
    if "kernel" not in attrs:
        raise KeyError("kernel.call needs a 'kernel' name attribute")
    return [result_type]


def _verify_fused(op: Operation) -> str | None:
    """Buffer-plan invariants of a fused kernel: every step reference must
    resolve to a fused operand or an *earlier* step's intermediate buffer."""
    steps = op.attrs.get("steps", ())
    for position, step in enumerate(steps):
        for ref in step.operand_refs:
            if ref >= 0:
                if ref >= len(op.operands):
                    return (
                        f"step {position} ({step.qualified}) reads operand {ref} "
                        f"but the fused op has {len(op.operands)} operands"
                    )
            else:
                target = -ref - 1
                if target >= position:
                    return (
                        f"step {position} ({step.qualified}) reads the buffer of "
                        f"step {target}, which has not been computed yet"
                    )
    return None


def _verify_call(op: Operation) -> str | None:
    kernel = op.attrs.get("kernel")
    if not isinstance(kernel, str) or not kernel:
        return f"'kernel' attribute must be a non-empty kernel name, got {kernel!r}"
    return None


register_op(OpDef("kernel", "fused", _infer_fused, verify=_verify_fused))
# Handcrafted kernels are opaque escapes: the analysis layer cannot see
# inside them, so they are not pure — DCE/CSE must leave them alone.
register_op(OpDef("kernel", "call", _infer_call, pure=False, verify=_verify_call))
