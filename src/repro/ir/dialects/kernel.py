"""The ``kernel`` dialect: the bottom of the IR.

``kernel.fused`` packages a chain of elementwise steps produced by the
fusion pass into one launch — the cross-domain op-fusing §2.2 argues a
common IR enables.  ``kernel.call`` invokes a handcrafted (predefined)
operator from the kernel registry, the escape hatch Figure 2 shows as
"cudf ops / misc ops".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..core import OpDef, register_op
from ..types import IRType

__all__ = ["FusedStep"]


@dataclass(frozen=True)
class FusedStep:
    """One step inside a fused kernel.

    ``operand_refs`` index into the fused op's operand list when >= 0; a
    negative ref ``-(k+1)`` refers to the result of step ``k`` (so ``-1``
    is step 0's result, ``-2`` step 1's, ...).
    """

    dialect: str
    name: str
    operand_refs: Tuple[int, ...]
    attrs: Tuple[Tuple[str, Any], ...] = ()

    @property
    def qualified(self) -> str:
        return f"{self.dialect}.{self.name}"

    def attrs_dict(self) -> Dict[str, Any]:
        return dict(self.attrs)


def _infer_fused(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    result_type = attrs.get("result_type")
    if result_type is None:
        raise KeyError("kernel.fused needs a precomputed 'result_type'")
    steps = attrs.get("steps")
    if not steps:
        raise KeyError("kernel.fused needs a non-empty 'steps' tuple")
    for step in steps:
        if not isinstance(step, FusedStep):
            raise TypeError(f"fused step must be FusedStep, got {type(step)}")
    return [result_type]


def _infer_call(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    result_type = attrs.get("result_type")
    if result_type is None:
        raise KeyError("kernel.call needs a 'result_type' attribute")
    if "kernel" not in attrs:
        raise KeyError("kernel.call needs a 'kernel' name attribute")
    return [result_type]


register_op(OpDef("kernel", "fused", _infer_fused))
register_op(OpDef("kernel", "call", _infer_call))
