"""The ``linalg`` dialect: tensor algebra for the ML side of pipelines.

Elementwise ops are fusion candidates; ``matmul``/``reduce_sum`` are the
compute-heavy ops whose backend choice (CPU/GPU/FPGA) experiment E8 sweeps.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import OpDef, Operation, register_op
from ..types import FrameType, IRType, TensorType

__all__ = []


def _tensor(types: Sequence[IRType], index: int = 0) -> TensorType:
    t = types[index]
    if not isinstance(t, TensorType):
        raise TypeError(f"expected tensor operand, got {t!r}")
    return t


def _broadcast(a: Tuple[Optional[int], ...], b: Tuple[Optional[int], ...]):
    """Numpy-style shape broadcast with dynamic dims."""
    out = []
    for da, db in zip(reversed(a), reversed(b), strict=False):
        if da == 1:
            out.append(db)
        elif db == 1 or da == db:
            out.append(da)
        elif da is None or db is None:
            out.append(None)
        else:
            raise TypeError(f"cannot broadcast shapes {a} and {b}")
    longer = a if len(a) > len(b) else b
    out.extend(reversed(longer[: abs(len(a) - len(b))]))
    return tuple(reversed(out))


def _infer_binary(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    a, b = _tensor(types, 0), _tensor(types, 1)
    if a.dtype != b.dtype:
        raise TypeError(f"dtype mismatch: {a.dtype} vs {b.dtype}")
    return [TensorType(_broadcast(a.shape, b.shape), a.dtype)]


def _infer_unary(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    a = _tensor(types)
    return [TensorType(a.shape, a.dtype)]


def _infer_matmul(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    a, b = _tensor(types, 0), _tensor(types, 1)
    if a.rank != 2 or b.rank != 2:
        raise TypeError(f"matmul needs rank-2 tensors, got {a!r} @ {b!r}")
    if a.shape[1] is not None and b.shape[0] is not None and a.shape[1] != b.shape[0]:
        raise TypeError(f"matmul inner dims differ: {a!r} @ {b!r}")
    return [TensorType((a.shape[0], b.shape[1]), a.dtype)]


def _infer_transpose(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    a = _tensor(types)
    if a.rank != 2:
        raise TypeError("transpose needs a rank-2 tensor")
    return [TensorType((a.shape[1], a.shape[0]), a.dtype)]


def _infer_reduce(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    a = _tensor(types)
    axis = attrs.get("axis")
    if axis is None:
        return [TensorType((), a.dtype)]
    if not (0 <= axis < a.rank):
        raise ValueError(f"reduce axis {axis} out of range for {a!r}")
    shape = tuple(d for i, d in enumerate(a.shape) if i != axis)
    return [TensorType(shape, a.dtype)]


def _infer_constant(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    value = attrs.get("value")
    if value is None:
        raise KeyError("linalg.constant needs a 'value' attribute")
    arr = np.asarray(value)
    return [TensorType(arr.shape, arr.dtype.name)]


def _infer_frame_to_tensor(types: Sequence[IRType], attrs: Dict[str, Any]) -> List[IRType]:
    frame = types[0]
    if not isinstance(frame, FrameType):
        raise TypeError("frame_to_tensor needs a frame operand")
    columns = tuple(attrs.get("columns", ()))
    if not columns:
        raise KeyError("frame_to_tensor needs a 'columns' attribute")
    for name in columns:
        if not frame.has_column(name):
            raise KeyError(f"frame_to_tensor: no column {name!r}")
    return [TensorType((frame.num_rows, len(columns)), "float64")]


def _verify_constant(op: Operation) -> "str | None":
    value = op.attrs.get("value")
    try:
        np.asarray(value)
    except Exception as exc:  # noqa: BLE001 — report, don't crash the verifier
        return f"'value' attribute is not array-convertible: {exc}"
    return None


def _verify_reduce(op: Operation) -> "str | None":
    axis = op.attrs.get("axis")
    if axis is not None and not isinstance(axis, int):
        return f"'axis' attribute must be an int or None, got {axis!r}"
    return None


register_op(
    OpDef("linalg", "constant", _infer_constant, num_operands=0, verify=_verify_constant)
)
register_op(OpDef("linalg", "add", _infer_binary, num_operands=2, elementwise=True))
register_op(OpDef("linalg", "sub", _infer_binary, num_operands=2, elementwise=True))
register_op(OpDef("linalg", "mul", _infer_binary, num_operands=2, elementwise=True))
register_op(OpDef("linalg", "div", _infer_binary, num_operands=2, elementwise=True))
register_op(OpDef("linalg", "relu", _infer_unary, num_operands=1, elementwise=True))
register_op(OpDef("linalg", "sigmoid", _infer_unary, num_operands=1, elementwise=True))
register_op(OpDef("linalg", "exp", _infer_unary, num_operands=1, elementwise=True))
register_op(OpDef("linalg", "neg", _infer_unary, num_operands=1, elementwise=True))
register_op(OpDef("linalg", "matmul", _infer_matmul, num_operands=2))
register_op(OpDef("linalg", "transpose", _infer_transpose, num_operands=1))
register_op(OpDef("linalg", "reduce_sum", _infer_reduce, num_operands=1, verify=_verify_reduce))
register_op(OpDef("linalg", "reduce_mean", _infer_reduce, num_operands=1, verify=_verify_reduce))
register_op(OpDef("linalg", "frame_to_tensor", _infer_frame_to_tensor, num_operands=1))
