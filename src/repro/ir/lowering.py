"""Dialect lowering: relational -> df, plus backend assignment.

The access layer "collectively lowers" domain declarations "onto one
logical graph" (§1); within the IR that means rewriting the logical
``relational`` ops into physical ``df`` ops (algorithm choices become
explicit: joins become hash joins) and then annotating each op with a
hardware backend (see :mod:`repro.ir.backends`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .backends import ALL_BACKENDS, Backend, SelectionPolicy, select_backends
from .core import Builder, Function, Value

__all__ = ["lower_relational_to_df", "lower_to_physical", "RELATIONAL_TO_DF"]

RELATIONAL_TO_DF: Dict[str, str] = {
    "scan": "source",
    "filter": "where",
    "project": "select",
    "join": "hash_join",
    "aggregate": "hash_aggregate",
    "sort": "sort",
    "limit": "limit",
    "distinct": "distinct",
}


def lower_relational_to_df(func: Function, name: Optional[str] = None) -> Function:
    """Rewrite every relational op into its physical df counterpart."""
    builder = Builder(name or f"{func.name}_df")
    mapping: Dict[int, Value] = {}
    for param in func.params:
        mapping[id(param)] = builder.add_param(param.name, param.type)
    for op in func.ops:
        operands = [mapping[id(v)] for v in op.operands]
        if op.dialect == "relational":
            target = RELATIONAL_TO_DF.get(op.name)
            if target is None:
                raise KeyError(f"no df lowering for relational.{op.name}")
            new_op = builder.emit("df", target, operands, dict(op.attrs))
        else:
            new_op = builder.emit(op.dialect, op.name, operands, dict(op.attrs))
        for old, new in zip(op.results, new_op.results, strict=False):
            mapping[id(old)] = new
    lowered = builder.ret(*[mapping[id(v)] for v in func.returns])
    lowered.verify()
    return lowered


def lower_to_physical(
    func: Function,
    backends: Sequence[Backend] = ALL_BACKENDS,
    policy: SelectionPolicy = SelectionPolicy.CHEAPEST,
    default_rows: int = 100_000,
) -> Function:
    """Full lowering: relational->df (if needed) + backend annotation."""
    if any(op.dialect == "relational" for op in func.ops):
        func = lower_relational_to_df(func)
    select_backends(func, backends, policy, default_rows)
    return func
