"""Reference interpreter: execute an IR function over numpy values.

Used three ways: as the execution body of FlowGraph vertices, as the
equivalence oracle for lowering/optimization passes (optimized and
unoptimized functions must produce identical results), and directly by the
examples.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from .core import Function, Operation
from .dialects.kernel import FusedStep
from .kernels import HANDCRAFTED, KERNELS

__all__ = ["Interpreter", "run_function", "execute_op"]


def execute_op(
    op: Operation,
    operand_values: Sequence[Any],
    tables: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Execute one op given already-evaluated operand values."""
    key = (op.dialect, op.name)
    if key == ("kernel", "fused"):
        return _execute_fused(op.attrs["steps"], operand_values, tables)
    if key == ("kernel", "call"):
        fn = HANDCRAFTED.get(op.attrs["kernel"])
        if fn is None:
            raise KeyError(f"unknown handcrafted kernel {op.attrs['kernel']!r}")
        return fn(*operand_values, **op.attrs.get("kwargs", {}))
    impl = KERNELS.get(key)
    if impl is None:
        raise KeyError(f"no kernel for {op.qualified}")
    if key in (("relational", "scan"), ("df", "source")):
        return impl(op.attrs, tables=tables or {})
    return impl(op.attrs, *operand_values)


def _execute_fused(
    steps: Sequence[FusedStep],
    operand_values: Sequence[Any],
    tables: Optional[Mapping[str, Any]],
) -> Any:
    intermediates: List[Any] = []
    for step in steps:
        args = []
        for ref in step.operand_refs:
            if ref >= 0:
                args.append(operand_values[ref])
            else:
                args.append(intermediates[-ref - 1])
        key = (step.dialect, step.name)
        impl = KERNELS.get(key)
        if impl is None:
            raise KeyError(f"no kernel for fused step {step.qualified}")
        intermediates.append(impl(step.attrs_dict(), *args))
    return intermediates[-1]


class Interpreter:
    """Executes functions; ``tables`` backs relational.scan/df.source."""

    def __init__(self, tables: Optional[Mapping[str, Any]] = None):
        self.tables = dict(tables or {})

    def run(self, func: Function, inputs: Optional[Mapping[str, Any]] = None) -> List[Any]:
        inputs = dict(inputs or {})
        env: Dict[int, Any] = {}
        for param in func.params:
            if param.name not in inputs:
                raise KeyError(
                    f"missing input {param.name!r} for {func.name}; "
                    f"have {sorted(inputs)}"
                )
            env[id(param)] = inputs[param.name]
        for op in func.ops:
            operand_values = [env[id(v)] for v in op.operands]
            value = execute_op(op, operand_values, tables=self.tables)
            if len(op.results) != 1:
                raise NotImplementedError("multi-result ops not supported")
            env[id(op.results[0])] = value
        missing = [v for v in func.returns if id(v) not in env]
        if missing:
            raise KeyError(f"function returns unevaluated values: {missing}")
        return [env[id(v)] for v in func.returns]


def run_function(
    func: Function,
    inputs: Optional[Mapping[str, Any]] = None,
    tables: Optional[Mapping[str, Any]] = None,
) -> List[Any]:
    return Interpreter(tables).run(func, inputs)
