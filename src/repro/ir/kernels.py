"""Reference numpy kernels for every IR op, plus the handcrafted-op registry.

These are the "predefined operators" of §1 (cudf ops, arrow ops, ...) and
the execution bodies the interpreter dispatches to.  All frame kernels are
vectorized column-at-a-time — the execution style the shared columnar
format exists to support.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Tuple

import numpy as np

from ..caching.columnar import RecordBatch
from .expr import Expr

__all__ = ["KERNELS", "HANDCRAFTED", "register_handcrafted", "hash_partition"]


def _columns(batch: RecordBatch) -> Dict[str, np.ndarray]:
    return batch.columns()


# -- frame kernels -------------------------------------------------------------


def k_scan(attrs: Dict[str, Any], *, tables: Mapping[str, RecordBatch]) -> RecordBatch:
    table = attrs["table"]
    if table not in tables:
        raise KeyError(f"scan of unknown table {table!r}; have {sorted(tables)}")
    return tables[table]


def k_filter(attrs: Dict[str, Any], batch: RecordBatch) -> RecordBatch:
    pred: Expr = attrs["pred"]
    mask = np.asarray(pred.evaluate(_columns(batch)), dtype=bool)
    return batch.filter(mask)


def k_project(attrs: Dict[str, Any], batch: RecordBatch) -> RecordBatch:
    names = list(attrs.get("columns", ()))
    derived = list(attrs.get("derived", ()))
    cols: Dict[str, np.ndarray] = {}
    for name in names:
        cols[name] = batch.column(name)
    env = _columns(batch)
    for name, expr, dtype in derived:
        value = np.asarray(expr.evaluate(env))
        if value.ndim == 0:  # broadcast scalar expressions
            value = np.full(batch.num_rows, value[()])
        cols[name] = value.astype(np.dtype(dtype), copy=False)
    return RecordBatch.from_arrays(cols)


def k_join(attrs: Dict[str, Any], left: RecordBatch, right: RecordBatch) -> RecordBatch:
    left_on, right_on = attrs["left_on"], attrs["right_on"]
    build = right.column(right_on)
    index: Dict[Any, List[int]] = {}
    for i, key in enumerate(build.tolist()):
        index.setdefault(key, []).append(i)
    probe = left.column(left_on).tolist()
    left_idx: List[int] = []
    right_idx: List[int] = []
    for i, key in enumerate(probe):
        for j in index.get(key, ()):
            left_idx.append(i)
            right_idx.append(j)
    li = np.asarray(left_idx, dtype=np.int64)
    ri = np.asarray(right_idx, dtype=np.int64)
    cols: Dict[str, np.ndarray] = {}
    for name in left.schema.names:
        cols[name] = left.column(name)[li]
    for name in right.schema.names:
        if name == right_on:
            continue
        out_name = name if name not in cols else f"r_{name}"
        cols[out_name] = right.column(name)[ri]
    return RecordBatch.from_arrays(cols)


_AGG_IMPL: Dict[str, Callable[[np.ndarray], Any]] = {
    "sum": np.sum,
    "count": len,
    "mean": np.mean,
    "min": np.min,
    "max": np.max,
}


def k_aggregate(attrs: Dict[str, Any], batch: RecordBatch) -> RecordBatch:
    keys = list(attrs.get("keys", ()))
    aggs = list(attrs["aggs"])
    if not keys:
        cols: Dict[str, np.ndarray] = {}
        for out_name, fn, colname in aggs:
            source = batch.column(colname if fn != "count" else batch.schema.names[0])
            value = _AGG_IMPL[fn](source) if batch.num_rows else _empty_agg(fn)
            dtype = np.int64 if fn == "count" else None
            cols[out_name] = np.asarray([value], dtype=dtype)
        return RecordBatch.from_arrays(cols)

    key_arrays = [batch.column(k) for k in keys]
    # lexicographic group identification
    order = np.lexsort(key_arrays[::-1])
    sorted_keys = [arr[order] for arr in key_arrays]
    if batch.num_rows == 0:
        boundaries = np.asarray([], dtype=np.int64)
    else:
        changed = np.zeros(batch.num_rows, dtype=bool)
        changed[0] = True
        for arr in sorted_keys:
            changed[1:] |= arr[1:] != arr[:-1]
        boundaries = np.flatnonzero(changed)
    cols = {}
    for key_name, arr in zip(keys, sorted_keys, strict=False):
        cols[key_name] = arr[boundaries]
    group_slices = list(zip(boundaries, list(boundaries[1:]) + [batch.num_rows], strict=False))
    for out_name, fn, colname in aggs:
        if fn == "count":
            cols[out_name] = np.asarray(
                [b - a for a, b in group_slices], dtype=np.int64
            )
            continue
        source = batch.column(colname)[order]
        cols[out_name] = np.asarray(
            [_AGG_IMPL[fn](source[a:b]) for a, b in group_slices]
        )
    return RecordBatch.from_arrays(cols)


def _empty_agg(fn: str) -> Any:
    if fn == "count":
        return 0
    if fn == "sum":
        return 0.0
    raise ValueError(f"aggregate {fn!r} of an empty frame is undefined")


def k_sort(attrs: Dict[str, Any], batch: RecordBatch) -> RecordBatch:
    by = list(attrs["by"])
    ascending = attrs.get("ascending", True)
    keys = [batch.column(name) for name in by]
    order = np.lexsort(keys[::-1])
    if not ascending:
        order = order[::-1]
    return batch.take(order)


def k_limit(attrs: Dict[str, Any], batch: RecordBatch) -> RecordBatch:
    return batch.slice(0, attrs["n"])


def k_distinct(attrs: Dict[str, Any], batch: RecordBatch) -> RecordBatch:
    """Row-level dedup, keeping first occurrences in row order."""
    if batch.num_rows == 0:
        return batch
    columns = [batch.column(name) for name in batch.schema.names]
    order = np.lexsort(columns[::-1])  # stable: ties keep original order
    changed = np.zeros(batch.num_rows, dtype=bool)
    changed[0] = True
    for col_arr in columns:
        sorted_col = col_arr[order]
        changed[1:] |= sorted_col[1:] != sorted_col[:-1]
    first_indices = np.sort(order[changed])
    return batch.take(first_indices)


# -- tensor kernels -----------------------------------------------------------------


def k_constant(attrs: Dict[str, Any]) -> np.ndarray:
    return np.asarray(attrs["value"])


def k_frame_to_tensor(attrs: Dict[str, Any], batch: RecordBatch) -> np.ndarray:
    columns = list(attrs["columns"])
    return np.column_stack(
        [batch.column(c).astype(np.float64) for c in columns]
    )


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


KERNELS: Dict[Tuple[str, str], Callable[..., Any]] = {
    ("relational", "scan"): k_scan,
    ("relational", "filter"): k_filter,
    ("relational", "project"): k_project,
    ("relational", "join"): k_join,
    ("relational", "aggregate"): k_aggregate,
    ("relational", "sort"): k_sort,
    ("relational", "limit"): k_limit,
    ("relational", "distinct"): k_distinct,
    ("df", "source"): k_scan,
    ("df", "where"): k_filter,
    ("df", "select"): k_project,
    ("df", "hash_join"): k_join,
    ("df", "hash_aggregate"): k_aggregate,
    ("df", "sort"): k_sort,
    ("df", "limit"): k_limit,
    ("df", "distinct"): k_distinct,
    ("linalg", "constant"): lambda attrs: k_constant(attrs),
    ("linalg", "add"): lambda attrs, a, b: a + b,
    ("linalg", "sub"): lambda attrs, a, b: a - b,
    ("linalg", "mul"): lambda attrs, a, b: a * b,
    ("linalg", "div"): lambda attrs, a, b: a / b,
    ("linalg", "relu"): lambda attrs, a: np.maximum(a, 0.0),
    ("linalg", "sigmoid"): lambda attrs, a: _sigmoid(a),
    ("linalg", "exp"): lambda attrs, a: np.exp(a),
    ("linalg", "neg"): lambda attrs, a: -a,
    ("linalg", "matmul"): lambda attrs, a, b: a @ b,
    ("linalg", "transpose"): lambda attrs, a: a.T,
    ("linalg", "reduce_sum"): lambda attrs, a: np.sum(a, axis=attrs.get("axis")),
    ("linalg", "reduce_mean"): lambda attrs, a: np.mean(a, axis=attrs.get("axis")),
    ("linalg", "frame_to_tensor"): k_frame_to_tensor,
}


# -- handcrafted operator registry (the "cudf ops / misc ops" of Figure 2) -----

HANDCRAFTED: Dict[str, Callable[..., Any]] = {}


def register_handcrafted(name: str):
    """Decorator: register a predefined operator usable via kernel.call."""

    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in HANDCRAFTED:
            raise ValueError(f"handcrafted kernel {name!r} already registered")
        HANDCRAFTED[name] = fn
        return fn

    return wrap


@register_handcrafted("misc.top_k")
def hk_top_k(batch: RecordBatch, column: str, k: int) -> RecordBatch:
    values = batch.column(column)
    order = np.argsort(values)[::-1][:k]
    return batch.take(order)


@register_handcrafted("misc.distinct")
def hk_distinct(batch: RecordBatch, column: str) -> np.ndarray:
    return np.unique(batch.column(column))


@register_handcrafted("cudf.normalize")
def hk_normalize(tensor: np.ndarray) -> np.ndarray:
    std = tensor.std(axis=0)
    std[std == 0] = 1.0
    return (tensor - tensor.mean(axis=0)) / std


def hash_partition(batch: RecordBatch, column: str, num_partitions: int) -> List[RecordBatch]:
    """Split a batch by hash of a key column (keyed-edge semantics)."""
    if num_partitions < 1:
        raise ValueError(f"need >= 1 partitions, got {num_partitions}")
    keys = batch.column(column)
    # deterministic integer hash (avoid PYTHONHASHSEED nondeterminism)
    buckets = (keys.astype(np.int64) * np.int64(2654435761)) % num_partitions
    buckets = np.abs(buckets)
    return [batch.filter(buckets == p) for p in range(num_partitions)]
