"""The multi-level IR (the paper's MLIR substitute).

Hardware-agnostic ops organized in dialects (relational, df, linalg,
kernel), a pass manager with cross-domain elementwise fusion, multi-backend
lowering with cost models, and a numpy reference interpreter.
"""

from . import dialects  # noqa: F401 — registers all ops
from .backends import (
    ALL_BACKENDS,
    CPU_BACKEND,
    FPGA_BACKEND,
    GPU_BACKEND,
    Backend,
    SelectionPolicy,
    estimated_cost,
    op_work_elements,
    select_backends,
)
from .core import (
    Builder,
    Function,
    IRVerificationError,
    Module,
    OpDef,
    Operation,
    Value,
    op_def,
    register_op,
)
from .dialects.kernel import FusedStep
from .expr import BinOp, Col, Expr, FuncCall, Lit, UnaryOp, col, lit
from .interpreter import Interpreter, execute_op, run_function
from .kernels import HANDCRAFTED, KERNELS, hash_partition, register_handcrafted
from .lowering import RELATIONAL_TO_DF, lower_relational_to_df, lower_to_physical
from .passes import (
    CommonSubexpressionElimination,
    ConstantFold,
    DeadCodeElimination,
    FuseElementwise,
    MiscompileError,
    Pass,
    PassManager,
    PassStats,
)
from .types import FrameType, IRType, ScalarType, TensorType, boolean, f64, i64

__all__ = [
    "Builder",
    "Function",
    "Module",
    "Operation",
    "Value",
    "OpDef",
    "op_def",
    "register_op",
    "IRVerificationError",
    "FusedStep",
    "Expr",
    "Col",
    "Lit",
    "BinOp",
    "UnaryOp",
    "FuncCall",
    "col",
    "lit",
    "Interpreter",
    "run_function",
    "execute_op",
    "KERNELS",
    "HANDCRAFTED",
    "register_handcrafted",
    "hash_partition",
    "lower_relational_to_df",
    "lower_to_physical",
    "RELATIONAL_TO_DF",
    "Pass",
    "PassManager",
    "PassStats",
    "MiscompileError",
    "DeadCodeElimination",
    "CommonSubexpressionElimination",
    "ConstantFold",
    "FuseElementwise",
    "Backend",
    "CPU_BACKEND",
    "GPU_BACKEND",
    "FPGA_BACKEND",
    "ALL_BACKENDS",
    "SelectionPolicy",
    "select_backends",
    "estimated_cost",
    "op_work_elements",
    "IRType",
    "ScalarType",
    "TensorType",
    "FrameType",
    "f64",
    "i64",
    "boolean",
]
