"""Hardware backends for IR ops, with per-op cost models.

§2.2: "A key benefit of using hardware-agnostic IR is that we can lower a
single piece of code to multiple hardware backends, based on a set of
predefined policies."  Each :class:`Backend` declares which ops it can
execute and estimates their cost; :func:`select_backends` annotates a
function's ops with the policy's choice, and can also *split* one op onto
several backends for direct comparison (Figure 2's D -> D1/D2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..cluster.hardware import DeviceKind
from .core import Function, Operation
from .types import FrameType, TensorType

__all__ = [
    "Backend",
    "CPU_BACKEND",
    "GPU_BACKEND",
    "FPGA_BACKEND",
    "ALL_BACKENDS",
    "SelectionPolicy",
    "select_backends",
    "op_work_elements",
]


def op_work_elements(op: Operation, default_rows: int = 100_000) -> float:
    """Rough work size of an op in 'elements touched'."""
    total = 0.0
    values = list(op.operands) + list(op.results)
    for value in values:
        t = value.type
        if isinstance(t, TensorType):
            n = t.num_elements()
            total += float(n) if n is not None else float(default_rows)
        elif isinstance(t, FrameType):
            rows = t.num_rows if t.num_rows is not None else default_rows
            total += float(rows) * len(t.columns)
    if op.qualified == "linalg.matmul":
        a = op.operands[0].type
        b = op.operands[1].type
        if isinstance(a, TensorType) and isinstance(b, TensorType):
            m = a.shape[0] or default_rows
            k = a.shape[1] or default_rows
            n = b.shape[1] or default_rows
            return float(m * k * n)
    return max(total, 1.0)


@dataclass(frozen=True)
class Backend:
    """One lowering target: which ops it supports and what they cost."""

    name: str
    device_kind: DeviceKind
    throughput: float  # elements/second for supported ops
    launch_overhead: float  # seconds per op launch
    supported: Tuple[str, ...] = ()  # qualified op prefixes; () = everything

    def supports(self, op: Operation) -> bool:
        if not self.supported:
            return True
        return any(
            op.qualified == p or op.qualified.startswith(p + ".") or op.dialect == p
            for p in self.supported
        )

    def cost(self, op: Operation, default_rows: int = 100_000) -> float:
        work = op_work_elements(op, default_rows)
        return self.launch_overhead + work / self.throughput


CPU_BACKEND = Backend(
    name="cpu",
    device_kind=DeviceKind.CPU,
    throughput=2e9,
    launch_overhead=2e-6,
)

GPU_BACKEND = Backend(
    name="gpu",
    device_kind=DeviceKind.GPU,
    throughput=8e10,
    launch_overhead=2e-5,
    # GPUs run the tensor dialect and bulk frame kernels (the cudf ops),
    # but not arbitrary scans or handcrafted escapes.
    supported=("linalg", "df.where", "df.select", "df.hash_join", "df.hash_aggregate", "kernel.fused"),
)

FPGA_BACKEND = Backend(
    name="fpga",
    device_kind=DeviceKind.FPGA,
    throughput=2.4e10,
    launch_overhead=8e-6,
    # A streaming-friendly subset: filters, projections, elementwise math.
    supported=("df.where", "df.select", "linalg.add", "linalg.mul", "linalg.relu",
               "linalg.sigmoid", "kernel.fused"),
)

ALL_BACKENDS: Tuple[Backend, ...] = (CPU_BACKEND, GPU_BACKEND, FPGA_BACKEND)


class SelectionPolicy(enum.Enum):
    CPU_ONLY = "cpu_only"  # the pre-DSA baseline
    CHEAPEST = "cheapest"  # predefined rule: per-op argmin of the cost model
    PREFER_ACCELERATOR = "prefer_accelerator"  # accelerator whenever supported


def select_backends(
    func: Function,
    backends: Sequence[Backend] = ALL_BACKENDS,
    policy: SelectionPolicy = SelectionPolicy.CHEAPEST,
    default_rows: int = 100_000,
) -> Dict[str, str]:
    """Annotate every op with attrs['backend']; returns {op repr: backend}.

    Ops no accelerator supports fall back to the CPU backend, which must be
    in ``backends``.
    """
    cpu = next((b for b in backends if b.device_kind == DeviceKind.CPU), None)
    if cpu is None:
        raise ValueError("backend selection requires a CPU backend as fallback")
    chosen: Dict[str, str] = {}
    for i, op in enumerate(func.ops):
        candidates = [b for b in backends if b.supports(op)]
        if not candidates:
            candidates = [cpu]
        if policy == SelectionPolicy.CPU_ONLY:
            pick = cpu
        elif policy == SelectionPolicy.CHEAPEST:
            pick = min(candidates, key=lambda b, _op=op: (b.cost(_op, default_rows), b.name))
        elif policy == SelectionPolicy.PREFER_ACCELERATOR:
            accel = [b for b in candidates if b.device_kind.is_accelerator]
            pick = min(accel, key=lambda b, _op=op: (b.cost(_op, default_rows), b.name)) if accel else cpu
        else:
            raise ValueError(f"unknown policy {policy}")
        op.attrs["backend"] = pick.name
        chosen[f"{i}:{op.qualified}"] = pick.name
    return chosen


def estimated_cost(
    func: Function,
    backends: Sequence[Backend] = ALL_BACKENDS,
    default_rows: int = 100_000,
) -> float:
    """Total modeled cost of a function with its current backend annotations."""
    by_name = {b.name: b for b in backends}
    total = 0.0
    for op in func.ops:
        backend = by_name.get(op.attrs.get("backend", "cpu"))
        if backend is None:
            raise KeyError(f"op {op.qualified} annotated with unknown backend")
        total += backend.cost(op, default_rows)
    return total
