"""Skadi: a distributed runtime for data systems in disaggregated data
centers — a from-scratch reproduction of the HotOS '23 paper.

Layers (bottom-up):

* :mod:`repro.cluster`  — simulated disaggregated data center (DES).
* :mod:`repro.caching`  — shared columnar format, tiers, replication/EC, KV.
* :mod:`repro.runtime`  — stateful serverless runtime (mini-Ray): tasks,
  actors, futures, ownership, raylets, pull/push resolution, lineage.
* :mod:`repro.ir`       — multi-level IR (MLIR substitute) with fusion and
  multi-backend lowering.
* :mod:`repro.flowgraph`— logical FlowGraph and physical sharded graph.
* :mod:`repro.frontends`— SQL, dataframe, MapReduce, graph, ML tiers.
* :mod:`repro.telemetry`— metrics plane, causal span tracing, critical path.
* :mod:`repro.core`     — the Skadi facade.

Quick start::

    from repro import Skadi
    from repro.caching import RecordBatch

    skadi = Skadi()
    orders = RecordBatch.from_pydict({"k": [1, 2, 1], "x": [1.0, 2.0, 3.0]})
    out = skadi.sql("SELECT k, SUM(x) AS s FROM orders GROUP BY k ORDER BY k",
                    {"orders": orders})
"""

from .caching import RecordBatch, Schema
from .cluster import (
    build_logical_disagg,
    build_physical_disagg,
    build_serverful,
    build_tightly_coupled,
)
from .core import QueryReport, Skadi
from .frontends.dataframe import DataFrame, from_batch, from_table
from .ir import col, lit
from .runtime import (
    Generation,
    ObjectRef,
    ResolutionMode,
    RuntimeConfig,
    SchedulingPolicy,
    ServerlessRuntime,
)

__version__ = "0.1.0"

__all__ = [
    "Skadi",
    "QueryReport",
    "RecordBatch",
    "Schema",
    "DataFrame",
    "from_table",
    "from_batch",
    "col",
    "lit",
    "ServerlessRuntime",
    "RuntimeConfig",
    "Generation",
    "ResolutionMode",
    "SchedulingPolicy",
    "ObjectRef",
    "build_serverful",
    "build_logical_disagg",
    "build_physical_disagg",
    "build_tightly_coupled",
    "__version__",
]
