"""repro.chaos — deterministic fault injection for the simulated runtime.

Build a :class:`ChaosSchedule` (fluently or from a seed), arm it with a
:class:`ChaosMonkey`, and run the workload; the runtime's heartbeat
detector, retry policy, and actor reconstruction do the surviving.

Fault domains follow the disaggregated hardware: whole nodes
(:class:`NodeCrash`), single accelerators (:class:`DeviceFailure`),
memory blades (:class:`BladeFailure`), DPUs (:class:`DpuFailure`), and
the control plane itself (:class:`HeadFailure` kills the GCS's node)
each fail — and are detected and recovered — differently.
"""

from .events import (
    BladeFailure,
    ChaosSchedule,
    DeviceFailure,
    DpuFailure,
    Fault,
    HeadFailure,
    LinkDegradation,
    LoadBurst,
    MessageLoss,
    NetworkPartition,
    NodeCrash,
    ScheduleValidationError,
    Straggler,
)
from .monkey import ChaosMonkey

__all__ = [
    "BladeFailure",
    "ChaosMonkey",
    "ChaosSchedule",
    "DeviceFailure",
    "DpuFailure",
    "Fault",
    "HeadFailure",
    "LinkDegradation",
    "LoadBurst",
    "MessageLoss",
    "NetworkPartition",
    "NodeCrash",
    "ScheduleValidationError",
    "Straggler",
]
