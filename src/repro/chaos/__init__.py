"""repro.chaos — deterministic fault injection for the simulated runtime.

Build a :class:`ChaosSchedule` (fluently or from a seed), arm it with a
:class:`ChaosMonkey`, and run the workload; the runtime's heartbeat
detector, retry policy, and actor reconstruction do the surviving.
"""

from .events import (
    ChaosSchedule,
    Fault,
    LinkDegradation,
    MessageLoss,
    NetworkPartition,
    NodeCrash,
    Straggler,
)
from .monkey import ChaosMonkey

__all__ = [
    "ChaosMonkey",
    "ChaosSchedule",
    "Fault",
    "LinkDegradation",
    "MessageLoss",
    "NetworkPartition",
    "NodeCrash",
    "Straggler",
]
