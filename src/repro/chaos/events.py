"""Fault vocabulary and deterministic chaos schedules.

A :class:`ChaosSchedule` is a plain list of fault records pinned to virtual
times.  Nothing here touches the runtime — the schedule is data; the
:class:`~repro.chaos.monkey.ChaosMonkey` arms it against a live runtime.
Keeping the two separate means a schedule can be printed, stored next to a
benchmark result, and replayed bit-for-bit: the determinism contract is
that the same schedule (including one built by :meth:`ChaosSchedule.random`
from a seed) against the same workload yields the identical event log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Fault",
    "NodeCrash",
    "NetworkPartition",
    "LinkDegradation",
    "MessageLoss",
    "Straggler",
    "DeviceFailure",
    "BladeFailure",
    "DpuFailure",
    "HeadFailure",
    "LoadBurst",
    "ChaosSchedule",
    "ScheduleValidationError",
]


class ScheduleValidationError(ValueError):
    """A fault record is malformed or names an id the cluster lacks."""


@dataclass(frozen=True)
class Fault:
    """Base record: something bad happens at virtual time ``at``."""

    at: float


@dataclass(frozen=True)
class NodeCrash(Fault):
    """The node's raylets die and its object copies vanish.

    Purely physical: the control plane is *not* told — with heartbeats
    enabled it finds out the honest way, after ``miss_threshold`` silent
    intervals.  ``restart_after`` (relative to the crash) brings the
    raylets back; they resume beating and get un-suspected.
    """

    node_id: str = ""
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class NetworkPartition(Fault):
    """Split the cluster into node-id groups; cross-group traffic drops.

    Nodes absent from every group form an implicit remainder group.
    ``heal_after`` is relative to ``at``; ``None`` never heals.
    """

    groups: Tuple[Tuple[str, ...], ...] = ()
    heal_after: Optional[float] = None


@dataclass(frozen=True)
class LinkDegradation(Fault):
    """One link's serialization + latency inflate by ``factor`` (>= 1)."""

    a: str = ""
    b: str = ""
    factor: float = 1.0
    duration: Optional[float] = None


@dataclass(frozen=True)
class MessageLoss(Fault):
    """Seeded Bernoulli drop of control messages at ``rate``."""

    rate: float = 0.0
    duration: Optional[float] = None
    seed: int = 0


@dataclass(frozen=True)
class Straggler(Fault):
    """One device computes ``factor``× slower (sampled at task launch)."""

    device_id: str = ""
    factor: float = 1.0
    duration: Optional[float] = None


@dataclass(frozen=True)
class DeviceFailure(Fault):
    """A single device (GPU/FPGA) dies; its host node keeps running.

    Device memory is volatile: every object copy on the device vanishes.
    Detection is device-granular — the owning raylet reports the death in
    its next heartbeat (or, when the raylet was hosted *on* the device,
    per-endpoint silence is the signal).  ``recover_after`` (relative to
    the failure) brings the device back empty.
    """

    device_id: str = ""
    recover_after: Optional[float] = None


@dataclass(frozen=True)
class BladeFailure(Fault):
    """A disaggregated-memory blade dies: every spilled object is lost.

    Blades run no raylet, so there is no heartbeat to go silent; the GCS
    discovers the death through its periodic blade liveness probes (ping
    RPCs over the simulated fabric).  Recovery must come from the
    replicated/EC reliable cache or from lineage re-execution.
    """

    node_id: str = ""
    recover_after: Optional[float] = None


@dataclass(frozen=True)
class DpuFailure(Fault):
    """A card's DPU dies; the companion devices (and their memory) survive.

    Gen-1 homes the card's raylet on the DPU, so its death orphans the
    companions — the head server's raylet adopts them and control traffic
    re-routes through it (degraded mode: longer control path, more
    contention).  Gen-2 raylets terminate on the devices themselves, so a
    DPU death costs nothing — exactly the single-point-of-control contrast
    the paper draws.
    """

    node_id: str = ""
    recover_after: Optional[float] = None


@dataclass(frozen=True)
class HeadFailure(Fault):
    """The head node — and the GCS riding on it — dies.

    No victim id: the monkey resolves the *current leader* at fire time,
    so a schedule with two head kills takes out the original head and
    then whichever standby won the first election.  Without standby
    replicas (``RuntimeConfig.ha_replicas == 0``) this is fatal for every
    open task; with replicas the standbys detect the sync silence, elect,
    replay the WAL, and resume.  ``restart_after`` (relative to the kill)
    powers the node back on — it rejoins as a worker, never as leader.
    """

    restart_after: Optional[float] = None


@dataclass(frozen=True)
class LoadBurst(Fault):
    """An open-loop arrival spike: ``n_tasks`` submissions over ``duration``.

    Overload is a fault like any other — the monkey submits tasks drawn
    from its ``task_source`` at a fixed open-loop rate (evenly spaced, plus
    optional seeded jitter), regardless of whether the runtime is keeping
    up.  That open loop is what makes retry storms metastable: offered load
    does not slacken when goodput collapses.  ``duration=0`` delivers the
    whole burst at one instant.
    """

    n_tasks: int = 0
    duration: float = 0.0
    seed: int = 0
    jitter: float = 0.0  # fraction of the inter-arrival gap, uniform +/-


class ChaosSchedule:
    """An ordered fault plan, built fluently or drawn from a seed."""

    def __init__(self, faults: Sequence[Fault] = ()):
        self.faults: List[Fault] = list(faults)

    # -- fluent builders -----------------------------------------------------

    def crash_node(
        self, at: float, node_id: str, restart_after: Optional[float] = None
    ) -> "ChaosSchedule":
        self.faults.append(NodeCrash(at, node_id, restart_after))
        return self

    def partition(
        self,
        at: float,
        groups: Sequence[Sequence[str]],
        heal_after: Optional[float] = None,
    ) -> "ChaosSchedule":
        frozen = tuple(tuple(sorted(g)) for g in groups)
        self.faults.append(NetworkPartition(at, frozen, heal_after))
        return self

    def degrade_link(
        self, at: float, a: str, b: str, factor: float, duration: Optional[float] = None
    ) -> "ChaosSchedule":
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        self.faults.append(LinkDegradation(at, a, b, factor, duration))
        return self

    def lose_messages(
        self, at: float, rate: float, duration: Optional[float] = None, seed: int = 0
    ) -> "ChaosSchedule":
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.faults.append(MessageLoss(at, rate, duration, seed))
        return self

    def slow_device(
        self, at: float, device_id: str, factor: float, duration: Optional[float] = None
    ) -> "ChaosSchedule":
        if factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {factor}")
        self.faults.append(Straggler(at, device_id, factor, duration))
        return self

    def fail_device(
        self, at: float, device_id: str, recover_after: Optional[float] = None
    ) -> "ChaosSchedule":
        self.faults.append(DeviceFailure(at, device_id, recover_after))
        return self

    def fail_blade(
        self, at: float, node_id: str, recover_after: Optional[float] = None
    ) -> "ChaosSchedule":
        self.faults.append(BladeFailure(at, node_id, recover_after))
        return self

    def fail_dpu(
        self, at: float, node_id: str, recover_after: Optional[float] = None
    ) -> "ChaosSchedule":
        self.faults.append(DpuFailure(at, node_id, recover_after))
        return self

    def fail_gcs(
        self, at: float, restart_after: Optional[float] = None
    ) -> "ChaosSchedule":
        """Kill the head node (whoever leads at ``at``) and the GCS with it."""
        self.faults.append(HeadFailure(at, restart_after))
        return self

    def burst(
        self,
        at: float,
        n_tasks: int,
        duration: float = 0.0,
        seed: int = 0,
        jitter: float = 0.0,
    ) -> "ChaosSchedule":
        if n_tasks < 1:
            raise ValueError(f"burst needs n_tasks >= 1, got {n_tasks}")
        if duration < 0:
            raise ValueError(f"burst duration must be >= 0, got {duration}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"burst jitter must be in [0, 1), got {jitter}")
        self.faults.append(LoadBurst(at, n_tasks, duration, seed, jitter))
        return self

    # -- validation ----------------------------------------------------------

    def validate(
        self,
        node_ids: Optional[Sequence[str]] = None,
        device_ids: Optional[Sequence[str]] = None,
        extra_endpoints: Sequence[str] = (),
    ) -> None:
        """Reject malformed schedules before they are armed.

        Checks every fault for a negative injection time and a recovery
        window that is not strictly positive (``recover_at <= at`` in
        absolute terms).  When ``node_ids``/``device_ids`` are given —
        the :class:`~repro.chaos.monkey.ChaosMonkey` passes the armed
        cluster's directory — faults naming unknown ids are rejected too,
        so a typo'd victim surfaces at ``arm()`` instead of as a silent
        no-op (or KeyError) mid-run.
        """
        nodes = None if node_ids is None else set(node_ids)
        devices = None if device_ids is None else set(device_ids)
        endpoints = None if devices is None else devices | set(extra_endpoints)

        def check_node(fault: Fault, node_id: str) -> None:
            if nodes is not None and node_id not in nodes:
                raise ScheduleValidationError(
                    f"{type(fault).__name__} at t={fault.at} names unknown "
                    f"node {node_id!r} (cluster has {sorted(nodes)})"
                )

        def check_device(fault: Fault, device_id: str) -> None:
            if devices is not None and device_id not in devices:
                raise ScheduleValidationError(
                    f"{type(fault).__name__} at t={fault.at} names unknown "
                    f"device {device_id!r}"
                )

        def check_window(fault: Fault, label: str, value: Optional[float]) -> None:
            if value is not None and value <= 0:
                raise ScheduleValidationError(
                    f"{type(fault).__name__} at t={fault.at}: {label}={value} "
                    f"must be > 0 (recovery at or before injection)"
                )

        for fault in self.faults:
            if fault.at < 0:
                raise ScheduleValidationError(
                    f"{type(fault).__name__} has negative injection time {fault.at}"
                )
            if isinstance(fault, NodeCrash):
                check_node(fault, fault.node_id)
                check_window(fault, "restart_after", fault.restart_after)
            elif isinstance(fault, (BladeFailure, DpuFailure)):
                check_node(fault, fault.node_id)
                check_window(fault, "recover_after", fault.recover_after)
            elif isinstance(fault, DeviceFailure):
                check_device(fault, fault.device_id)
                check_window(fault, "recover_after", fault.recover_after)
            elif isinstance(fault, Straggler):
                check_device(fault, fault.device_id)
                check_window(fault, "duration", fault.duration)
            elif isinstance(fault, NetworkPartition):
                for group in fault.groups:
                    for node_id in group:
                        check_node(fault, node_id)
                check_window(fault, "heal_after", fault.heal_after)
            elif isinstance(fault, LinkDegradation):
                if endpoints is not None:
                    for end in (fault.a, fault.b):
                        if end not in endpoints:
                            raise ScheduleValidationError(
                                f"LinkDegradation at t={fault.at} names unknown "
                                f"endpoint {end!r}"
                            )
                check_window(fault, "duration", fault.duration)
            elif isinstance(fault, HeadFailure):
                check_window(fault, "restart_after", fault.restart_after)
            elif isinstance(fault, MessageLoss):
                check_window(fault, "duration", fault.duration)
            elif isinstance(fault, LoadBurst):
                if fault.n_tasks < 1:
                    raise ScheduleValidationError(
                        f"LoadBurst at t={fault.at} needs n_tasks >= 1, "
                        f"got {fault.n_tasks}"
                    )
                if fault.duration < 0:
                    raise ScheduleValidationError(
                        f"LoadBurst at t={fault.at} has negative duration "
                        f"{fault.duration}"
                    )

    # -- introspection -------------------------------------------------------

    def ordered(self) -> List[Fault]:
        """Faults by injection time, ties broken by kind then fields — the
        order the monkey arms them, and therefore deterministic."""
        return sorted(self.faults, key=lambda f: (f.at, type(f).__name__, repr(f)))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.ordered())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(repr(f) for f in self.ordered())
        return f"ChaosSchedule([{inner}])"

    # -- seeded generation ---------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        node_ids: Sequence[str],
        horizon: float,
        device_ids: Sequence[str] = (),
        links: Sequence[Tuple[str, str]] = (),
        n_crashes: int = 2,
        n_partitions: int = 1,
        n_stragglers: int = 1,
        n_degradations: int = 0,
        message_loss_rate: float = 0.0,
        restart_fraction: float = 1.0,
        straggler_factor: Tuple[float, float] = (4.0, 16.0),
        degrade_factor: Tuple[float, float] = (2.0, 10.0),
        n_device_failures: int = 0,
        blade_ids: Sequence[str] = (),
        n_blade_failures: int = 0,
        dpu_ids: Sequence[str] = (),
        n_dpu_failures: int = 0,
        recover_fraction: float = 1.0,
        n_head_failures: int = 0,
    ) -> "ChaosSchedule":
        """A reproducible pseudo-random schedule inside ``(0, horizon)``.

        The same ``(seed, arguments)`` always yields the same schedule; the
        RNG is local, so interleaving with other random consumers cannot
        perturb it.
        """
        if not node_ids:
            raise ValueError("need at least one node id to schedule faults")
        rng = random.Random(seed)
        sched = cls()

        def when(lo: float = 0.1, hi: float = 0.75) -> float:
            return round(rng.uniform(lo * horizon, hi * horizon), 9)

        for _ in range(n_crashes):
            node = rng.choice(list(node_ids))
            restart = (
                round(rng.uniform(0.05, 0.25) * horizon, 9)
                if rng.random() < restart_fraction
                else None
            )
            sched.crash_node(when(), node, restart_after=restart)
        for _ in range(n_partitions):
            if len(node_ids) < 2:
                break
            k = rng.randint(1, max(1, len(node_ids) // 2))
            island = rng.sample(list(node_ids), k)
            sched.partition(when(), [island], heal_after=round(
                rng.uniform(0.05, 0.2) * horizon, 9
            ))
        for _ in range(n_stragglers):
            if not device_ids:
                break
            dev = rng.choice(list(device_ids))
            factor = round(rng.uniform(*straggler_factor), 3)
            sched.slow_device(when(), dev, factor, duration=round(
                rng.uniform(0.1, 0.4) * horizon, 9
            ))
        for _ in range(n_degradations):
            if not links:
                break
            a, b = rng.choice(list(links))
            factor = round(rng.uniform(*degrade_factor), 3)
            sched.degrade_link(when(), a, b, factor, duration=round(
                rng.uniform(0.1, 0.4) * horizon, 9
            ))
        if message_loss_rate > 0.0:
            sched.lose_messages(
                when(0.05, 0.3),
                message_loss_rate,
                duration=round(rng.uniform(0.2, 0.5) * horizon, 9),
                seed=rng.randrange(1 << 30),
            )

        # device-granular failure domains (drawn last so schedules built by
        # older seeds stay bit-identical when these counts default to zero)
        def recovery() -> Optional[float]:
            if rng.random() < recover_fraction:
                return round(rng.uniform(0.1, 0.3) * horizon, 9)
            return None

        for _ in range(n_device_failures):
            if not device_ids:
                break
            sched.fail_device(when(), rng.choice(list(device_ids)), recovery())
        for _ in range(n_blade_failures):
            if not blade_ids:
                break
            sched.fail_blade(when(), rng.choice(list(blade_ids)), recovery())
        for _ in range(n_dpu_failures):
            if not dpu_ids:
                break
            sched.fail_dpu(when(), rng.choice(list(dpu_ids)), recovery())
        # control-plane kills (drawn last, after every earlier family, so
        # schedules built by older seeds stay bit-identical at the default 0)
        for _ in range(n_head_failures):
            sched.fail_gcs(when(), recovery())
        return sched
