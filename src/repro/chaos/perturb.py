"""Seeded schedule perturbation: the chaos source for Skadi-TSan.

The simulator breaks same-instant ties by a monotonic sequence number, so
any run is one *particular* linearization of the causal order.  A
:class:`TiePerturbation` installed via ``Simulator.set_perturbation`` picks
a different — but still deterministic — linearization: same-instant ties
are re-ranked by a seeded hash, and (optionally) positive delays are
stretched by a bounded jitter factor.  Causality is preserved by
construction: an event is only scheduled once its cause has executed, and
delays are never shortened.

The ``active`` window restricts the perturbation to a subset of sequence
numbers; the sanitizer's shrinker (``repro.analysis.dist.perturb``)
narrows a failing window down to a minimal failing schedule.

Hashing uses md5, the repo's determinism idiom (see
``overload.backoff_jitter_fraction``): stable across processes, platforms
and Python versions, unlike ``hash()`` or a shared ``random`` stream.
"""

from __future__ import annotations

import hashlib
from typing import Collection, Optional, Tuple

__all__ = ["TiePerturbation", "tie_rank", "jitter_fraction"]


def tie_rank(seed: int, seq: int) -> int:
    """A pinned pseudo-random rank for event ``seq`` under ``seed``."""
    digest = hashlib.md5(f"{seed}:{seq}".encode()).hexdigest()
    return int(digest[:8], 16)


def jitter_fraction(seed: int, seq: int) -> float:
    """A pinned jitter fraction in [0, 1] for event ``seq`` under ``seed``."""
    digest = hashlib.md5(f"j{seed}:{seq}".encode()).hexdigest()
    return int(digest[:8], 16) / 0xFFFFFFFF


class TiePerturbation:
    """A seeded, windowable schedule perturbation.

    Parameters
    ----------
    seed:
        Drives both the tie re-ranking and the delay jitter.
    active:
        Sequence numbers the perturbation applies to (``None`` = all).
        Inactive events keep rank 0, i.e. their original relative order
        among themselves — and sort *before* perturbed events at the same
        instant, so shrinking a window toward empty converges on the
        legacy schedule.
    jitter:
        Maximum fractional delay stretch for active events.  ``0.1`` means
        a positive delay may grow by up to 10%; zero delays are never
        touched (run-to-completion steps stay immediate).
    """

    def __init__(
        self,
        seed: int,
        active: Optional[Collection[int]] = None,
        jitter: float = 0.0,
    ):
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.seed = seed
        self.active = None if active is None else frozenset(active)
        self.jitter = jitter
        self.perturbed = 0  # events actually re-ranked (diagnostics)
        self.last_seq = 0  # highest sequence number observed (shrinker universe)

    def is_active(self, seq: int) -> bool:
        return self.active is None or seq in self.active

    def __call__(self, seq: int, delay: float) -> Tuple[int, float]:
        if seq > self.last_seq:
            self.last_seq = seq
        if not self.is_active(seq):
            return 0, delay
        self.perturbed += 1
        if self.jitter and delay > 0.0:
            delay = delay * (1.0 + self.jitter * jitter_fraction(self.seed, seq))
        return tie_rank(self.seed, seq), delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        window = "all" if self.active is None else f"{len(self.active)} seqs"
        return f"TiePerturbation(seed={self.seed}, active={window}, jitter={self.jitter})"
