"""The chaos monkey: arms a fault schedule against a live runtime.

Injection is *physical*: a :class:`NodeCrash` kills raylets, wipes their
stores, and interrupts the task attempts running there — and says nothing
to the control plane.  With heartbeats enabled, recovery is driven end to
end by detection (suspicion → blacklist → retry → actor reconstruction),
which is the whole point of the exercise.  Without a failure detector the
monkey falls back to telling the runtime directly (the pre-chaos
omniscient path), so chaos schedules still work against legacy configs.

Every injection lands in the runtime's event log as a ``chaos_*`` event,
so traces show faults next to the recovery storms they trigger and two
seeded runs can be compared signature-for-signature.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, TYPE_CHECKING

from ..cluster.hardware import DeviceKind
from ..runtime.overload import AdmissionRejectedError
from ..serving.arrivals import uniform_offsets
from .events import (
    BladeFailure,
    ChaosSchedule,
    DeviceFailure,
    DpuFailure,
    Fault,
    HeadFailure,
    LinkDegradation,
    LoadBurst,
    MessageLoss,
    NetworkPartition,
    NodeCrash,
    Straggler,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.runtime import ServerlessRuntime

__all__ = ["ChaosMonkey"]


class ChaosMonkey:
    """Schedules a :class:`ChaosSchedule`'s faults on the simulator clock."""

    def __init__(
        self,
        runtime: "ServerlessRuntime",
        schedule: ChaosSchedule,
        task_source: Optional[Callable[[int], object]] = None,
    ):
        self.runtime = runtime
        self.sim = runtime.sim
        self.schedule = schedule
        self.injected: List[Fault] = []
        # LoadBurst needs a workload to inject: task_source(i) submits the
        # i-th burst task (and may raise AdmissionRejectedError, counted below)
        self.task_source = task_source
        self.load_submitted = 0
        self.load_rejected = 0
        self._armed = False
        self._reactive_fired: Set[str] = set()

    def arm(self) -> "ChaosMonkey":
        """Pin every fault to its virtual time; call once, before running.

        Validates the schedule against the runtime's cluster first, so a
        typo'd victim or an impossible recovery window fails loudly here
        instead of as a silent no-op mid-run.
        """
        if self._armed:
            raise RuntimeError("chaos monkey is already armed")
        if self.task_source is None and any(
            isinstance(f, LoadBurst) for f in self.schedule.faults
        ):
            raise RuntimeError(
                "schedule contains a LoadBurst but the monkey has no "
                "task_source to draw submissions from"
            )
        cluster = self.runtime.cluster
        self.schedule.validate(
            node_ids=[n for n in cluster.nodes],
            device_ids=[d.device_id for d in cluster.all_devices()],
            extra_endpoints=(cluster.switch_id,),
        )
        self._armed = True
        if any(not isinstance(f, LoadBurst) for f in self.schedule.faults):
            # Disruptive faults make every poll round load-bearing (silence
            # counting, probes, breaker resets must be simulated exactly):
            # block the simulator's idle fast-forward for the whole run.
            # Pure LoadBurst schedules inject work, not failures, so the
            # detector's analytic model stays valid and jumps stay legal.
            self.sim.arm_poller()
        for fault in self.schedule.ordered():
            self.sim.schedule_at(fault.at, self._inject, fault)
        return self

    def crash_on_object_ready(
        self, object_id: str, node_id: str, restart_after: Optional[float] = None
    ) -> None:
        """Reactive injection: kill ``node_id`` the instant ``object_id``
        materializes (fires once).  Useful for racing recovery paths."""

        def hook(ready_oid: str) -> None:
            key = f"{object_id}->{node_id}"
            if ready_oid == object_id and key not in self._reactive_fired:
                self._reactive_fired.add(key)
                self._inject(NodeCrash(self.sim.now, node_id, restart_after))

        # a reactive crash is a disruptive fault with no known time: exact
        # polling must hold for the rest of the run
        self.sim.arm_poller()
        self.runtime.object_ready_hooks.append(hook)

    # -- injection -----------------------------------------------------------

    def _inject(self, fault: Fault) -> None:
        self.injected.append(fault)
        if isinstance(fault, NodeCrash):
            self._crash(fault)
        elif isinstance(fault, NetworkPartition):
            self._partition(fault)
        elif isinstance(fault, LinkDegradation):
            self._degrade(fault)
        elif isinstance(fault, MessageLoss):
            self._lose(fault)
        elif isinstance(fault, Straggler):
            self._slow(fault)
        elif isinstance(fault, DeviceFailure):
            self._fail_device(fault)
        elif isinstance(fault, BladeFailure):
            self._fail_blade(fault)
        elif isinstance(fault, DpuFailure):
            self._fail_dpu(fault)
        elif isinstance(fault, HeadFailure):
            self._fail_head(fault)
        elif isinstance(fault, LoadBurst):
            self._burst(fault)
        else:  # pragma: no cover - future fault kinds
            raise TypeError(f"unknown fault {fault!r}")

    def _crash(self, fault: NodeCrash) -> None:
        rt = self.runtime
        rt._record("chaos_node_crash", node=fault.node_id)
        for raylet in rt._raylets_by_node.get(fault.node_id, []):
            raylet.fail()
        # a whole-node crash takes every device down with it — that is what
        # distinguishes it from the device-granular faults below, and what
        # the failure detector's triage probes will (correctly) find
        node = rt.cluster.nodes.get(fault.node_id)
        for dev in node.devices if node is not None else []:
            dev.fail()
        # attempts physically running there die with the node; their retry
        # policy takes it from here
        rt._interrupt_tasks_on(fault.node_id, "crashed")
        if rt.health is None:
            # nobody is listening for heartbeats: only driver fiat remains
            rt._mark_node_dead(fault.node_id, cause="chaos crash")
        if fault.restart_after is not None:
            self.sim.schedule(fault.restart_after, self._restart, fault.node_id)

    def _restart(self, node_id: str) -> None:
        rt = self.runtime
        rt._record("chaos_node_restart", node=node_id)
        node = rt.cluster.nodes.get(node_id)
        for dev in node.devices if node is not None else []:
            dev.restore()
        for raylet in rt._raylets_by_node.get(node_id, []):
            raylet.restart()
        if rt.health is None:
            rt._on_node_alive(node_id)
        # with heartbeats: the revived raylets resume beating and the
        # monitor un-suspects the node on the first delivered beat

    def _partition(self, fault: NetworkPartition) -> None:
        rt = self.runtime
        rt._record("chaos_partition", groups=fault.groups)
        rt.net.partition(*[set(g) for g in fault.groups])
        if fault.heal_after is not None:
            self.sim.schedule(fault.heal_after, self._heal)

    def _heal(self) -> None:
        self.runtime._record("chaos_partition_heal")
        self.runtime.net.heal_partition()

    def _degrade(self, fault: LinkDegradation) -> None:
        rt = self.runtime
        rt._record("chaos_link_degraded", a=fault.a, b=fault.b, factor=fault.factor)
        rt.net.topology.degrade_link(fault.a, fault.b, fault.factor)
        if fault.duration is not None:
            self.sim.schedule(fault.duration, self._restore_link, fault.a, fault.b)

    def _restore_link(self, a: str, b: str) -> None:
        self.runtime._record("chaos_link_restored", a=a, b=b)
        self.runtime.net.topology.restore_link(a, b)

    def _lose(self, fault: MessageLoss) -> None:
        rt = self.runtime
        rt._record("chaos_message_loss", rate=fault.rate, seed=fault.seed)
        rt.net.set_message_loss(fault.rate, seed=fault.seed)
        if fault.duration is not None:
            self.sim.schedule(fault.duration, self._stop_loss)

    def _stop_loss(self) -> None:
        self.runtime._record("chaos_message_loss_end")
        self.runtime.net.set_message_loss(0.0)

    def _slow(self, fault: Straggler) -> None:
        rt = self.runtime
        device = rt.cluster.device(fault.device_id)
        rt._record("chaos_straggler", device=fault.device_id, factor=fault.factor)
        device.slowdown = fault.factor
        if fault.duration is not None:
            self.sim.schedule(fault.duration, self._unslow, fault.device_id)

    def _unslow(self, device_id: str) -> None:
        self.runtime._record("chaos_straggler_end", device=device_id)
        self.runtime.cluster.device(device_id).slowdown = 1.0

    # -- control-plane kills ---------------------------------------------------

    def _fail_head(self, fault: HeadFailure) -> None:
        """Kill the current head node — and the GCS with it.

        The victim is resolved at fire time (after a failover the head is
        the elected standby, not the original server0).  The physical half
        matches a node crash: raylets die, device memory vanishes, local
        attempts interrupt.  The control half depends on replication:
        with standbys the HA controller freezes the control plane and lets
        the watch loops detect the silence; without, the GCS state is
        simply gone and every open task fails.
        """
        rt = self.runtime
        node_id = rt._head_node().node_id
        rt._record("chaos_head_failure", node=node_id)
        for raylet in rt._raylets_by_node.get(node_id, []):
            raylet.fail()
        node = rt.cluster.nodes.get(node_id)
        for dev in node.devices if node is not None else []:
            dev.fail()
        rt._interrupt_tasks_on(node_id, "head crashed")
        if rt.ha is not None:
            rt.ha.on_leader_killed()
        else:
            rt._on_gcs_lost(node_id)
        if fault.restart_after is not None:
            self.sim.schedule(fault.restart_after, self._restart, node_id)

    # -- overload (open-loop arrival spikes) ----------------------------------

    def _burst(self, fault: LoadBurst) -> None:
        """Open-loop load: the offered rate is fixed by the schedule, not by
        how fast the runtime absorbs it.  Submissions are spread evenly over
        the window (plus optional seeded jitter) by the shared arrival
        helper, so two runs of the same seed offer a bit-identical arrival
        pattern (``uniform_offsets`` pins the legacy float sequence)."""
        rt = self.runtime
        rt._record(
            "chaos_load_burst", n_tasks=fault.n_tasks, duration=fault.duration
        )
        offsets = uniform_offsets(
            fault.n_tasks, fault.duration, fault.seed, fault.jitter
        )
        for i, delay in enumerate(offsets):
            self.sim.schedule(delay, self._submit_load, i)

    def _submit_load(self, i: int) -> None:
        try:
            self.task_source(i)
        except AdmissionRejectedError:
            self.load_rejected += 1
        else:
            self.load_submitted += 1

    # -- device-granular failure domains -------------------------------------

    def _fail_device(self, fault: DeviceFailure) -> None:
        """A GPU/FPGA dies under a living host.  Physical half only: the
        silicon and its memory go; with heartbeats the owning raylet reports
        the death in its next beat (or, if the raylet lived *on* the device,
        endpoint silence plus probe triage takes over)."""
        rt = self.runtime
        device = rt.cluster.device(fault.device_id)
        rt._record("chaos_device_failure", device=fault.device_id, node=device.node_id)
        device.fail()
        store = rt._store_of_device.get(fault.device_id)
        if store is not None:
            store.clear()  # volatile device memory died with the silicon
        for raylet in rt._raylets_by_node.get(device.node_id, []):
            if raylet.host_device is device and raylet.alive:
                if all(d is device for d in raylet.devices):
                    raylet.fail()  # its only store just died anyway
                else:
                    raylet.fail_control()  # companion memory survives
        rt._interrupt_tasks_on_device(fault.device_id, "device failed")
        if rt.health is None:
            rt._mark_device_dead(fault.device_id, cause="chaos device failure")
            rt._adopt_orphans(device.node_id, cause="chaos device failure")
        if fault.recover_after is not None:
            self.sim.schedule(fault.recover_after, self._recover_device, fault.device_id)

    def _recover_device(self, device_id: str) -> None:
        rt = self.runtime
        rt._record("chaos_device_recovery", device=device_id)
        device = rt.cluster.device(device_id)
        device.restore()  # back, but empty
        for raylet in rt._raylets_by_node.get(device.node_id, []):
            if raylet.host_device is device:
                raylet.restart()
        if rt.health is None:
            rt._undo_takeover(device.node_id)
            rt._mark_device_alive(device_id)
        # with heartbeats: the next beat's status payload clears the device

    def _fail_blade(self, fault: BladeFailure) -> None:
        """A disaggregated-memory blade dies: spilled objects are gone.
        Blades never beat, so detection rides on the GCS's probe loop."""
        rt = self.runtime
        rt._record("chaos_blade_failure", node=fault.node_id)
        node = rt.cluster.nodes.get(fault.node_id)
        if node is None:
            return
        blade = node.attachment_device
        blade.fail()
        store = rt._store_of_device.get(blade.device_id)
        if store is not None:
            store.clear()
        if rt.health is None:
            rt._mark_blade_dead(fault.node_id, cause="chaos blade failure")
        if fault.recover_after is not None:
            self.sim.schedule(fault.recover_after, self._recover_blade, fault.node_id)

    def _recover_blade(self, node_id: str) -> None:
        rt = self.runtime
        rt._record("chaos_blade_recovery", node=node_id)
        node = rt.cluster.nodes.get(node_id)
        if node is None:
            return
        node.attachment_device.restore()
        if rt.health is None:
            rt._on_blade_alive(node_id)
        # with heartbeats: the next successful probe un-suspects the blade

    def _fail_dpu(self, fault: DpuFailure) -> None:
        """The card's DPU dies; companion silicon and memory survive.  In
        Gen-1 this kills the card's raylet (hosted on the DPU) without
        wiping its stores — triage finds the companions alive and the head
        raylet adopts them.  Gen-2 cards keep running untouched."""
        rt = self.runtime
        rt._record("chaos_dpu_failure", node=fault.node_id)
        node = rt.cluster.nodes.get(fault.node_id)
        dpu = node.first_of_kind(DeviceKind.DPU) if node is not None else None
        if dpu is None:
            return
        dpu.fail()
        for raylet in rt._raylets_by_node.get(fault.node_id, []):
            if raylet.host_device is dpu and raylet.alive:
                raylet.fail_control()  # stores live in companion memory
                rt._interrupt_tasks_on_raylet(raylet, "dpu failed")
        if rt.health is None:
            rt._mark_device_dead(dpu.device_id, cause="chaos dpu failure")
            rt._mark_dpu_dead(fault.node_id, cause="chaos dpu failure")
        if fault.recover_after is not None:
            self.sim.schedule(fault.recover_after, self._recover_dpu, fault.node_id)

    def _recover_dpu(self, node_id: str) -> None:
        rt = self.runtime
        rt._record("chaos_dpu_recovery", node=node_id)
        node = rt.cluster.nodes.get(node_id)
        dpu = node.first_of_kind(DeviceKind.DPU) if node is not None else None
        if dpu is None:
            return
        dpu.restore()
        for raylet in rt._raylets_by_node.get(node_id, []):
            if raylet.host_device is dpu:
                raylet.restart()
        if rt.health is None:
            rt._mark_device_alive(dpu.device_id)
            rt._on_dpu_alive(node_id)
        # with heartbeats: the revived raylet's first beat triggers the
        # hand-back of any adopted devices
