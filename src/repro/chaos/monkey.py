"""The chaos monkey: arms a fault schedule against a live runtime.

Injection is *physical*: a :class:`NodeCrash` kills raylets, wipes their
stores, and interrupts the task attempts running there — and says nothing
to the control plane.  With heartbeats enabled, recovery is driven end to
end by detection (suspicion → blacklist → retry → actor reconstruction),
which is the whole point of the exercise.  Without a failure detector the
monkey falls back to telling the runtime directly (the pre-chaos
omniscient path), so chaos schedules still work against legacy configs.

Every injection lands in the runtime's event log as a ``chaos_*`` event,
so traces show faults next to the recovery storms they trigger and two
seeded runs can be compared signature-for-signature.
"""

from __future__ import annotations

from typing import List, Optional, Set, TYPE_CHECKING

from .events import (
    ChaosSchedule,
    Fault,
    LinkDegradation,
    MessageLoss,
    NetworkPartition,
    NodeCrash,
    Straggler,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.runtime import ServerlessRuntime

__all__ = ["ChaosMonkey"]


class ChaosMonkey:
    """Schedules a :class:`ChaosSchedule`'s faults on the simulator clock."""

    def __init__(self, runtime: "ServerlessRuntime", schedule: ChaosSchedule):
        self.runtime = runtime
        self.sim = runtime.sim
        self.schedule = schedule
        self.injected: List[Fault] = []
        self._armed = False
        self._reactive_fired: Set[str] = set()

    def arm(self) -> "ChaosMonkey":
        """Pin every fault to its virtual time; call once, before running."""
        if self._armed:
            raise RuntimeError("chaos monkey is already armed")
        self._armed = True
        for fault in self.schedule.ordered():
            self.sim.schedule_at(fault.at, self._inject, fault)
        return self

    def crash_on_object_ready(
        self, object_id: str, node_id: str, restart_after: Optional[float] = None
    ) -> None:
        """Reactive injection: kill ``node_id`` the instant ``object_id``
        materializes (fires once).  Useful for racing recovery paths."""

        def hook(ready_oid: str) -> None:
            key = f"{object_id}->{node_id}"
            if ready_oid == object_id and key not in self._reactive_fired:
                self._reactive_fired.add(key)
                self._inject(NodeCrash(self.sim.now, node_id, restart_after))

        self.runtime.object_ready_hooks.append(hook)

    # -- injection -----------------------------------------------------------

    def _inject(self, fault: Fault) -> None:
        self.injected.append(fault)
        if isinstance(fault, NodeCrash):
            self._crash(fault)
        elif isinstance(fault, NetworkPartition):
            self._partition(fault)
        elif isinstance(fault, LinkDegradation):
            self._degrade(fault)
        elif isinstance(fault, MessageLoss):
            self._lose(fault)
        elif isinstance(fault, Straggler):
            self._slow(fault)
        else:  # pragma: no cover - future fault kinds
            raise TypeError(f"unknown fault {fault!r}")

    def _crash(self, fault: NodeCrash) -> None:
        rt = self.runtime
        rt._record("chaos_node_crash", node=fault.node_id)
        for raylet in rt._raylets_by_node.get(fault.node_id, []):
            raylet.fail()
        # attempts physically running there die with the node; their retry
        # policy takes it from here
        rt._interrupt_tasks_on(fault.node_id, "crashed")
        if rt.health is None:
            # nobody is listening for heartbeats: only driver fiat remains
            rt._mark_node_dead(fault.node_id, cause="chaos crash")
        if fault.restart_after is not None:
            self.sim.schedule(fault.restart_after, self._restart, fault.node_id)

    def _restart(self, node_id: str) -> None:
        rt = self.runtime
        rt._record("chaos_node_restart", node=node_id)
        for raylet in rt._raylets_by_node.get(node_id, []):
            raylet.restart()
        if rt.health is None:
            rt._on_node_alive(node_id)
        # with heartbeats: the revived raylets resume beating and the
        # monitor un-suspects the node on the first delivered beat

    def _partition(self, fault: NetworkPartition) -> None:
        rt = self.runtime
        rt._record("chaos_partition", groups=fault.groups)
        rt.net.partition(*[set(g) for g in fault.groups])
        if fault.heal_after is not None:
            self.sim.schedule(fault.heal_after, self._heal)

    def _heal(self) -> None:
        self.runtime._record("chaos_partition_heal")
        self.runtime.net.heal_partition()

    def _degrade(self, fault: LinkDegradation) -> None:
        rt = self.runtime
        rt._record("chaos_link_degraded", a=fault.a, b=fault.b, factor=fault.factor)
        rt.net.topology.degrade_link(fault.a, fault.b, fault.factor)
        if fault.duration is not None:
            self.sim.schedule(fault.duration, self._restore_link, fault.a, fault.b)

    def _restore_link(self, a: str, b: str) -> None:
        self.runtime._record("chaos_link_restored", a=a, b=b)
        self.runtime.net.topology.restore_link(a, b)

    def _lose(self, fault: MessageLoss) -> None:
        rt = self.runtime
        rt._record("chaos_message_loss", rate=fault.rate, seed=fault.seed)
        rt.net.set_message_loss(fault.rate, seed=fault.seed)
        if fault.duration is not None:
            self.sim.schedule(fault.duration, self._stop_loss)

    def _stop_loss(self) -> None:
        self.runtime._record("chaos_message_loss_end")
        self.runtime.net.set_message_loss(0.0)

    def _slow(self, fault: Straggler) -> None:
        rt = self.runtime
        device = rt.cluster.device(fault.device_id)
        rt._record("chaos_straggler", device=fault.device_id, factor=fault.factor)
        device.slowdown = fault.factor
        if fault.duration is not None:
            self.sim.schedule(fault.duration, self._unslow, fault.device_id)

    def _unslow(self, device_id: str) -> None:
        self.runtime._record("chaos_straggler_end", device=device_id)
        self.runtime.cluster.device(device_id).slowdown = 1.0
